#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "cache/semantic_cache.h"
#include "common/random.h"
#include "core/query_cache_manager.h"
#include "core/semantic_cache_manager.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace chunkcache::cache {
namespace {

using backend::StarJoinQuery;
using chunks::GroupBySpec;
using schema::OrdinalRange;
using storage::AggTuple;

RegionBox Box2(OrdinalRange x, OrdinalRange y) {
  RegionBox b;
  b.num_dims = 2;
  b.ranges[0] = x;
  b.ranges[1] = y;
  return b;
}

// ------------------------------ Box algebra ---------------------------------

TEST(RegionBoxTest, VolumeAndContains) {
  RegionBox b = Box2({2, 4}, {10, 10});
  EXPECT_EQ(b.Volume(), 3u);
  AggTuple row;
  row.coords = {3, 10};
  EXPECT_TRUE(b.Contains(row));
  row.coords = {5, 10};
  EXPECT_FALSE(b.Contains(row));
}

TEST(RegionBoxTest, IntersectBasics) {
  auto i = IntersectBoxes(Box2({0, 9}, {0, 9}), Box2({5, 15}, {3, 7}));
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->ranges[0], (OrdinalRange{5, 9}));
  EXPECT_EQ(i->ranges[1], (OrdinalRange{3, 7}));
  EXPECT_FALSE(
      IntersectBoxes(Box2({0, 4}, {0, 4}), Box2({5, 9}, {0, 4})).has_value());
}

TEST(RegionBoxTest, SubtractDisjointReturnsOriginal) {
  auto pieces = SubtractBox(Box2({0, 4}, {0, 4}), Box2({9, 10}, {0, 4}));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].ranges[0], (OrdinalRange{0, 4}));
}

TEST(RegionBoxTest, SubtractFullCoverReturnsNothing) {
  auto pieces = SubtractBox(Box2({2, 4}, {2, 4}), Box2({0, 9}, {0, 9}));
  EXPECT_TRUE(pieces.empty());
}

TEST(RegionBoxTest, SubtractCenterHole) {
  // Removing the center of a 10x10 box leaves 4 slabs tiling 91 cells.
  auto pieces = SubtractBox(Box2({0, 9}, {0, 9}), Box2({3, 5}, {4, 6}));
  uint64_t total = 0;
  for (const auto& p : pieces) total += p.Volume();
  EXPECT_EQ(total, 100u - 9u);
  // Pieces must be pairwise disjoint.
  for (size_t i = 0; i < pieces.size(); ++i) {
    for (size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_FALSE(IntersectBoxes(pieces[i], pieces[j]).has_value());
    }
  }
}

// Property sweep: subtraction always tiles a \ b exactly, for random boxes
// in up to 4 dimensions.
class SubtractPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SubtractPropertyTest, PiecesTileDifferenceExactly) {
  Random rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const uint32_t dims = 1 + static_cast<uint32_t>(rng.Uniform(4));
    auto random_box = [&]() {
      RegionBox b;
      b.num_dims = dims;
      for (uint32_t d = 0; d < dims; ++d) {
        const uint32_t lo = static_cast<uint32_t>(rng.Uniform(8));
        const uint32_t hi = lo + static_cast<uint32_t>(rng.Uniform(8 - lo));
        b.ranges[d] = OrdinalRange{lo, hi};
      }
      return b;
    };
    const RegionBox a = random_box();
    const RegionBox b = random_box();
    const auto pieces = SubtractBox(a, b);
    // Volume bookkeeping.
    const auto inter = IntersectBoxes(a, b);
    const uint64_t expected =
        a.Volume() - (inter ? inter->Volume() : 0);
    uint64_t total = 0;
    for (const auto& p : pieces) total += p.Volume();
    ASSERT_EQ(total, expected);
    // Every cell of every piece is in a and not in b; pieces disjoint.
    for (size_t i = 0; i < pieces.size(); ++i) {
      ASSERT_TRUE(IntersectBoxes(pieces[i], a).has_value());
      auto leak = IntersectBoxes(pieces[i], b);
      ASSERT_FALSE(leak.has_value());
      for (size_t j = i + 1; j < pieces.size(); ++j) {
        ASSERT_FALSE(IntersectBoxes(pieces[i], pieces[j]).has_value());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubtractPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------- SemanticRegionCache ---------------------------

StarJoinQuery Q(std::array<uint8_t, 4> levels,
                std::array<OrdinalRange, 4> sel) {
  StarJoinQuery q;
  q.group_by.num_dims = 4;
  for (int d = 0; d < 4; ++d) {
    q.group_by.levels[d] = levels[d];
    q.selection[d] = sel[d];
  }
  return q;
}

SemanticRegion MakeRegion(const StarJoinQuery& q, size_t rows) {
  SemanticRegion r;
  r.group_by = q.group_by;
  r.non_group_by = q.non_group_by;
  r.box.num_dims = 4;
  for (int d = 0; d < 4; ++d) r.box.ranges[d] = q.selection[d];
  r.benefit = 1.0;
  r.rows.resize(rows);
  return r;
}

TEST(SemanticRegionCacheTest, FullCoverAndRemainder) {
  SemanticRegionCache cache(1 << 20, MakePolicy("lru"));
  StarJoinQuery big = Q({1, 1, 1, 1},
                        {OrdinalRange{0, 10}, OrdinalRange{0, 10},
                         OrdinalRange{0, 4}, OrdinalRange{0, 9}});
  cache.Insert(MakeRegion(big, 5));

  // Fully contained query: no remainder.
  StarJoinQuery inner = big;
  inner.selection[0] = OrdinalRange{2, 6};
  auto probe = cache.Decompose(inner);
  EXPECT_TRUE(probe.remainder.empty());
  EXPECT_DOUBLE_EQ(probe.covered_fraction, 1.0);

  // Overlapping query: covered part + remainder.
  StarJoinQuery shifted = big;
  shifted.selection[0] = OrdinalRange{5, 15};
  probe = cache.Decompose(shifted);
  EXPECT_EQ(probe.covered.size(), 1u);
  ASSERT_EQ(probe.remainder.size(), 1u);
  EXPECT_EQ(probe.remainder[0].ranges[0], (OrdinalRange{11, 15}));
  EXPECT_NEAR(probe.covered_fraction, 6.0 / 11.0, 1e-12);

  // Different group-by level: nothing reusable.
  StarJoinQuery other = Q({2, 1, 1, 1},
                          {OrdinalRange{0, 10}, OrdinalRange{0, 10},
                           OrdinalRange{0, 4}, OrdinalRange{0, 9}});
  probe = cache.Decompose(other);
  EXPECT_TRUE(probe.covered.empty());
  ASSERT_EQ(probe.remainder.size(), 1u);
}

TEST(SemanticRegionCacheTest, NonGroupByMustMatch) {
  SemanticRegionCache cache(1 << 20, MakePolicy("lru"));
  StarJoinQuery q = Q({1, 1, 1, 1},
                      {OrdinalRange{0, 10}, OrdinalRange{0, 10},
                       OrdinalRange{0, 4}, OrdinalRange{0, 9}});
  q.non_group_by.push_back(backend::NonGroupByPredicate{2, 2, {0, 3}});
  cache.Insert(MakeRegion(q, 5));
  StarJoinQuery plain = q;
  plain.non_group_by.clear();
  auto probe = cache.Decompose(plain);
  EXPECT_TRUE(probe.covered.empty());
  probe = cache.Decompose(q);
  EXPECT_TRUE(probe.remainder.empty());
}

TEST(SemanticRegionCacheTest, MultipleRegionsComposeAndCountTests) {
  SemanticRegionCache cache(1 << 20, MakePolicy("lru"));
  StarJoinQuery left = Q({1, 1, 1, 1},
                         {OrdinalRange{0, 4}, OrdinalRange{0, 10},
                          OrdinalRange{0, 4}, OrdinalRange{0, 9}});
  StarJoinQuery right = left;
  right.selection[0] = OrdinalRange{5, 9};
  cache.Insert(MakeRegion(left, 2));
  cache.Insert(MakeRegion(right, 2));
  StarJoinQuery spanning = left;
  spanning.selection[0] = OrdinalRange{2, 7};
  auto probe = cache.Decompose(spanning);
  EXPECT_EQ(probe.covered.size(), 2u);
  EXPECT_TRUE(probe.remainder.empty());
  EXPECT_DOUBLE_EQ(probe.covered_fraction, 1.0);
  // The linear-intersection overhead is observable.
  EXPECT_GE(cache.stats().intersection_tests, 2u);
}

TEST(SemanticRegionCacheTest, EvictionKeepsBudget) {
  SemanticRegion probe_region;
  probe_region.rows.resize(50);
  const uint64_t bytes = probe_region.ByteSize();
  SemanticRegionCache cache(bytes * 2, MakePolicy("lru"));
  for (uint32_t i = 0; i < 6; ++i) {
    StarJoinQuery q = Q({1, 1, 1, 1},
                        {OrdinalRange{i * 2, i * 2 + 1}, OrdinalRange{0, 10},
                         OrdinalRange{0, 4}, OrdinalRange{0, 9}});
    cache.Insert(MakeRegion(q, 50));
  }
  EXPECT_LE(cache.bytes_used(), cache.capacity_bytes());
  EXPECT_EQ(cache.num_regions(), 2u);
  EXPECT_EQ(cache.stats().evictions, 4u);
}

// ---------------------------- SemanticCacheManager --------------------------

class SemanticManagerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    chunks::ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = chunks::ChunkingScheme::Build(schema_.get(), copts, 20000);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<chunks::ChunkingScheme>(
        std::move(scheme).value());
    pool_ = std::make_unique<storage::BufferPool>(&disk_, 4096);
    schema::FactGenOptions gen;
    gen.num_tuples = 20000;
    gen.seed = 57;
    auto file = backend::ChunkedFile::BulkLoad(
        pool_.get(), scheme_.get(),
        schema::GenerateFactTuples(*schema_, gen));
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(pool_.get(),
                                                       file_.get(),
                                                       scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<chunks::ChunkingScheme> scheme_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

TEST_F(SemanticManagerFixture, AgreesWithNoCacheUnderWorkload) {
  core::SemanticCacheManager semantic(engine_.get(),
                                      core::SemanticManagerOptions{});
  core::NoCacheManager reference(engine_.get());
  workload::QueryGenerator gen(schema_.get(), workload::EqprStream(58));
  for (int i = 0; i < 100; ++i) {
    const StarJoinQuery q = gen.Next();
    core::QueryStats s1, s2;
    auto a = semantic.Execute(q, &s1);
    auto b = reference.Execute(q, &s2);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size()) << "query " << i;
    for (size_t r = 0; r < a->size(); ++r) {
      for (int d = 0; d < 4; ++d) {
        ASSERT_EQ((*a)[r].coords[d], (*b)[r].coords[d])
            << "query " << i << " row " << r;
      }
      ASSERT_NEAR((*a)[r].sum, (*b)[r].sum, 1e-6);
      ASSERT_EQ((*a)[r].count, (*b)[r].count);
    }
  }
}

TEST_F(SemanticManagerFixture, ReusesOverlapLikeChunks) {
  core::SemanticCacheManager semantic(engine_.get(),
                                      core::SemanticManagerOptions{});
  StarJoinQuery q1 = Q({2, 1, 2, 1},
                       {OrdinalRange{5, 30}, OrdinalRange{0, 24},
                        OrdinalRange{0, 24}, OrdinalRange{0, 9}});
  core::QueryStats s1;
  ASSERT_TRUE(semantic.Execute(q1, &s1).ok());
  EXPECT_DOUBLE_EQ(s1.saved_fraction, 0.0);

  // Overlapping (not contained) query: semantic caching reuses the
  // overlap — the capability query-level caching lacks.
  StarJoinQuery q2 = q1;
  q2.selection[0] = OrdinalRange{20, 45};
  core::QueryStats s2;
  ASSERT_TRUE(semantic.Execute(q2, &s2).ok());
  EXPECT_GT(s2.saved_fraction, 0.0);
  EXPECT_LT(s2.saved_fraction, 1.0);

  // Exact repeat: full hit.
  core::QueryStats s3;
  ASSERT_TRUE(semantic.Execute(q2, &s3).ok());
  EXPECT_TRUE(s3.full_cache_hit);
  EXPECT_EQ(s3.backend_work.tuples_processed, 0u);
}

TEST_F(SemanticManagerFixture, IntersectionCostGrowsWithRegions) {
  // The overhead argument of Section 2.4: the number of intersection
  // tests per probe grows with the number of cached regions.
  core::SemanticCacheManager semantic(engine_.get(),
                                      core::SemanticManagerOptions{});
  workload::QueryGenerator gen(schema_.get(), workload::RandomStream(59));
  uint64_t tests_before = 0;
  for (int i = 0; i < 120; ++i) {
    core::QueryStats s;
    ASSERT_TRUE(semantic.Execute(gen.Next(), &s).ok());
    if (i == 20) tests_before = semantic.region_cache().stats().intersection_tests;
  }
  const auto& stats = semantic.region_cache().stats();
  const double early_rate = static_cast<double>(tests_before) / 21.0;
  const double late_rate =
      static_cast<double>(stats.intersection_tests - tests_before) / 99.0;
  EXPECT_GT(late_rate, early_rate);
  EXPECT_GT(semantic.region_cache().num_regions(), 50u);
}

}  // namespace
}  // namespace chunkcache::cache
