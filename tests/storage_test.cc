#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fact_file.h"

namespace chunkcache::storage {
namespace {

// ------------------------------ DiskManager ---------------------------------

TEST(InMemoryDiskManagerTest, CreateAllocateReadWrite) {
  InMemoryDiskManager dm;
  const uint32_t f = dm.CreateFile();
  EXPECT_EQ(f, 1u);
  auto pid = dm.AllocatePage(f);
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(pid->page_no, 0u);

  Page p;
  p.Zero();
  p.data[0] = 0xAB;
  p.data[kPageSize - 1] = 0xCD;
  ASSERT_TRUE(dm.WritePage(*pid, p).ok());

  Page q;
  ASSERT_TRUE(dm.ReadPage(*pid, &q).ok());
  EXPECT_EQ(q.data[0], 0xAB);
  EXPECT_EQ(q.data[kPageSize - 1], 0xCD);
  EXPECT_EQ(dm.stats().reads, 1u);
  EXPECT_EQ(dm.stats().writes, 1u);
}

TEST(InMemoryDiskManagerTest, FreshPageIsZeroed) {
  InMemoryDiskManager dm;
  const uint32_t f = dm.CreateFile();
  auto pid = dm.AllocatePage(f);
  ASSERT_TRUE(pid.ok());
  Page p;
  ASSERT_TRUE(dm.ReadPage(*pid, &p).ok());
  for (uint32_t i = 0; i < kPageSize; i += 512) EXPECT_EQ(p.data[i], 0);
}

TEST(InMemoryDiskManagerTest, ErrorsOnBadIds) {
  InMemoryDiskManager dm;
  Page p;
  EXPECT_EQ(dm.ReadPage(PageId{1, 0}, &p).code(), StatusCode::kIoError);
  EXPECT_EQ(dm.AllocatePage(7).status().code(), StatusCode::kInvalidArgument);
  const uint32_t f = dm.CreateFile();
  EXPECT_EQ(dm.ReadPage(PageId{f, 3}, &p).code(), StatusCode::kIoError);
  EXPECT_EQ(dm.WritePage(PageId{f, 3}, p).code(), StatusCode::kIoError);
}

TEST(InMemoryDiskManagerTest, MultipleFilesAreIndependent) {
  InMemoryDiskManager dm;
  const uint32_t f1 = dm.CreateFile();
  const uint32_t f2 = dm.CreateFile();
  ASSERT_TRUE(dm.AllocatePage(f1).ok());
  ASSERT_TRUE(dm.AllocatePage(f2).ok());
  Page a, b;
  a.Zero();
  b.Zero();
  a.data[7] = 1;
  b.data[7] = 2;
  ASSERT_TRUE(dm.WritePage(PageId{f1, 0}, a).ok());
  ASSERT_TRUE(dm.WritePage(PageId{f2, 0}, b).ok());
  Page out;
  ASSERT_TRUE(dm.ReadPage(PageId{f1, 0}, &out).ok());
  EXPECT_EQ(out.data[7], 1);
  ASSERT_TRUE(dm.ReadPage(PageId{f2, 0}, &out).ok());
  EXPECT_EQ(out.data[7], 2);
  EXPECT_EQ(dm.FilePageCount(f1), 1u);
  EXPECT_EQ(dm.FilePageCount(f2), 1u);
}

TEST(FileDiskManagerTest, RoundTripsAcrossReopen) {
  const std::string path = testing::TempDir() + "/chunkcache_fdm_test.db";
  std::remove(path.c_str());
  uint32_t f1, f2;
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    f1 = (*dm)->CreateFile();
    f2 = (*dm)->CreateFile();
    Page p;
    p.Zero();
    for (int i = 0; i < 5; ++i) {
      auto pid = (*dm)->AllocatePage(f1);
      ASSERT_TRUE(pid.ok());
      p.data[0] = static_cast<uint8_t>(i);
      ASSERT_TRUE((*dm)->WritePage(*pid, p).ok());
    }
    auto pid2 = (*dm)->AllocatePage(f2);
    ASSERT_TRUE(pid2.ok());
    p.data[0] = 99;
    ASSERT_TRUE((*dm)->WritePage(*pid2, p).ok());
    ASSERT_TRUE((*dm)->Sync().ok());
  }
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ((*dm)->FilePageCount(f1), 5u);
    EXPECT_EQ((*dm)->FilePageCount(f2), 1u);
    Page p;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          (*dm)->ReadPage(PageId{f1, static_cast<uint32_t>(i)}, &p).ok());
      EXPECT_EQ(p.data[0], static_cast<uint8_t>(i));
    }
    ASSERT_TRUE((*dm)->ReadPage(PageId{f2, 0}, &p).ok());
    EXPECT_EQ(p.data[0], 99);
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, LargeDirectorySpansMultiplePages) {
  // 3000 pages across several files make the serialized directory larger
  // than one 4 KiB page, exercising the multi-page directory path.
  const std::string path = testing::TempDir() + "/chunkcache_fdm_large.db";
  std::remove(path.c_str());
  std::vector<uint32_t> files;
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    Page p;
    p.Zero();
    for (int f = 0; f < 3; ++f) {
      files.push_back((*dm)->CreateFile());
      for (int i = 0; i < 1000; ++i) {
        auto pid = (*dm)->AllocatePage(files.back());
        ASSERT_TRUE(pid.ok());
        *p.As<uint32_t>() = static_cast<uint32_t>(f * 1000 + i);
        ASSERT_TRUE((*dm)->WritePage(*pid, p).ok());
      }
    }
    ASSERT_TRUE((*dm)->Sync().ok());
  }
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    Page p;
    for (int f = 0; f < 3; ++f) {
      ASSERT_EQ((*dm)->FilePageCount(files[f]), 1000u);
      for (uint32_t i = 0; i < 1000; i += 331) {
        ASSERT_TRUE((*dm)->ReadPage(PageId{files[f], i}, &p).ok());
        EXPECT_EQ(*p.As<uint32_t>(), static_cast<uint32_t>(f * 1000 + i));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, DestructorPersistsWithoutExplicitSync) {
  const std::string path = testing::TempDir() + "/chunkcache_fdm_dtor.db";
  std::remove(path.c_str());
  uint32_t file_id;
  {
    auto dm = FileDiskManager::Open(path);
    ASSERT_TRUE(dm.ok());
    file_id = (*dm)->CreateFile();
    auto pid = (*dm)->AllocatePage(file_id);
    ASSERT_TRUE(pid.ok());
    Page p;
    p.Zero();
    p.data[17] = 99;
    ASSERT_TRUE((*dm)->WritePage(*pid, p).ok());
    // No Sync(): the destructor must save the directory.
  }
  auto dm = FileDiskManager::Open(path);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ((*dm)->FilePageCount(file_id), 1u);
  Page p;
  ASSERT_TRUE((*dm)->ReadPage(PageId{file_id, 0}, &p).ok());
  EXPECT_EQ(p.data[17], 99);
  std::remove(path.c_str());
}

// ------------------------------ BufferPool ----------------------------------

TEST(BufferPoolTest, HitAvoidsPhysicalRead) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 4);
  const uint32_t f = dm.CreateFile();
  PageId pid;
  {
    auto g = pool.Allocate(f);
    ASSERT_TRUE(g.ok());
    pid = g->id();
    g->page()->data[0] = 42;
    g->MarkDirty();
  }
  dm.ResetStats();
  {
    auto g = pool.Fetch(pid);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->page()->data[0], 42);
  }
  EXPECT_EQ(dm.stats().reads, 0u);  // still cached
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPage) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  const uint32_t f = dm.CreateFile();
  PageId first;
  {
    auto g = pool.Allocate(f);
    ASSERT_TRUE(g.ok());
    first = g->id();
    g->page()->data[100] = 7;
    g->MarkDirty();
  }
  // Fill the pool with more pages so `first` gets evicted.
  for (int i = 0; i < 4; ++i) {
    auto g = pool.Allocate(f);
    ASSERT_TRUE(g.ok());
  }
  // Read back through a fresh fetch: the data must have been written back.
  auto g = pool.Fetch(first);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->page()->data[100], 7);
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().dirty_writebacks, 0u);
}

TEST(BufferPoolTest, AllPinnedExhaustsPool) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  const uint32_t f = dm.CreateFile();
  auto g1 = pool.Allocate(f);
  auto g2 = pool.Allocate(f);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto g3 = pool.Allocate(f);
  EXPECT_FALSE(g3.ok());
  EXPECT_EQ(g3.status().code(), StatusCode::kResourceExhausted);
  // Releasing one pin makes room again.
  g1->Release();
  auto g4 = pool.Allocate(f);
  EXPECT_TRUE(g4.ok());
}

TEST(BufferPoolTest, RefetchAfterUnpinCountsHit) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 8);
  const uint32_t f = dm.CreateFile();
  PageId pid;
  {
    auto g = pool.Allocate(f);
    ASSERT_TRUE(g.ok());
    pid = g->id();
  }
  const uint64_t misses_before = pool.stats().misses;
  for (int i = 0; i < 5; ++i) {
    auto g = pool.Fetch(pid);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool.stats().misses, misses_before);
  EXPECT_GE(pool.stats().hits, 5u);
}

TEST(BufferPoolTest, EvictAllDropsCleanAndDirtyPages) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 8);
  const uint32_t f = dm.CreateFile();
  PageId pid;
  {
    auto g = pool.Allocate(f);
    ASSERT_TRUE(g.ok());
    pid = g->id();
    g->page()->data[3] = 9;
    g->MarkDirty();
  }
  ASSERT_TRUE(pool.EvictAll().ok());
  dm.ResetStats();
  auto g = pool.Fetch(pid);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->page()->data[3], 9);
  EXPECT_EQ(dm.stats().reads, 1u);  // truly refetched from "disk"
}

TEST(BufferPoolTest, GuardMoveTransfersPin) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 2);
  const uint32_t f = dm.CreateFile();
  auto g1 = pool.Allocate(f);
  ASSERT_TRUE(g1.ok());
  PageGuard moved = std::move(*g1);
  EXPECT_TRUE(moved.valid());
  moved.Release();
  // After release both frames are available again.
  auto g2 = pool.Allocate(f);
  auto g3 = pool.Allocate(f);
  EXPECT_TRUE(g2.ok());
  EXPECT_TRUE(g3.ok());
}

// -------------------------------- FactFile ----------------------------------

Tuple MakeTuple(uint32_t a, uint32_t b, double m) {
  Tuple t;
  t.keys[0] = a;
  t.keys[1] = b;
  t.measure = m;
  return t;
}

TEST(FactFileTest, AppendAndGet) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 64);
  auto file = FactFile::Create(&pool, TupleDesc{2});
  ASSERT_TRUE(file.ok());
  for (uint32_t i = 0; i < 1000; ++i) {
    auto rid = file->Append(MakeTuple(i, i * 2, i * 0.5));
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(*rid, i);
  }
  EXPECT_EQ(file->num_tuples(), 1000u);
  Tuple t;
  ASSERT_TRUE(file->Get(123, &t).ok());
  EXPECT_EQ(t.keys[0], 123u);
  EXPECT_EQ(t.keys[1], 246u);
  EXPECT_DOUBLE_EQ(t.measure, 61.5);
  EXPECT_EQ(file->Get(1000, &t).code(), StatusCode::kOutOfRange);
}

TEST(FactFileTest, TuplesPerPageMatchesRecordSize) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 64);
  auto file = FactFile::Create(&pool, TupleDesc{4});
  ASSERT_TRUE(file.ok());
  // 4 dims * 4 B + 8 B = 24 B -> 170 tuples per 4096-B page.
  EXPECT_EQ(file->desc().RecordSize(), 24u);
  EXPECT_EQ(file->tuples_per_page(), 4096u / 24u);
}

TEST(FactFileTest, ScanVisitsAllInOrder) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 64);
  auto file = FactFile::Create(&pool, TupleDesc{2});
  ASSERT_TRUE(file.ok());
  const uint32_t n = 2500;
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(file->Append(MakeTuple(i, 0, 0)).ok());
  }
  uint32_t expect = 0;
  ASSERT_TRUE(file->Scan([&](RowId rid, const Tuple& t) {
                    EXPECT_EQ(rid, expect);
                    EXPECT_EQ(t.keys[0], expect);
                    ++expect;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(expect, n);
}

TEST(FactFileTest, ScanRangeRespectsBoundsAndEarlyStop) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 64);
  auto file = FactFile::Create(&pool, TupleDesc{2});
  ASSERT_TRUE(file.ok());
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(file->Append(MakeTuple(i, 0, 0)).ok());
  }
  std::vector<RowId> seen;
  ASSERT_TRUE(file->ScanRange(400, 100,
                              [&](RowId rid, const Tuple&) {
                                seen.push_back(rid);
                                return true;
                              })
                  .ok());
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen.front(), 400u);
  EXPECT_EQ(seen.back(), 499u);

  seen.clear();
  ASSERT_TRUE(file->ScanRange(0, 1000,
                              [&](RowId rid, const Tuple&) {
                                seen.push_back(rid);
                                return rid < 9;  // stop after 10 tuples
                              })
                  .ok());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(FactFileTest, ScanRangeBeyondEofClamps) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 16);
  auto file = FactFile::Create(&pool, TupleDesc{2});
  ASSERT_TRUE(file.ok());
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(file->Append(MakeTuple(i, 0, 0)).ok());
  }
  int count = 0;
  ASSERT_TRUE(file->ScanRange(5, 100,
                              [&](RowId, const Tuple&) {
                                ++count;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(count, 5);
  EXPECT_EQ(file->ScanRange(11, 1, [](RowId, const Tuple&) { return true; })
                .code(),
            StatusCode::kOutOfRange);
}

TEST(FactFileTest, FetchRowsCountsOnePinPerPage) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 64);
  auto file = FactFile::Create(&pool, TupleDesc{2});
  ASSERT_TRUE(file.ok());
  const uint32_t tpp = file->tuples_per_page();
  for (uint32_t i = 0; i < tpp * 4; ++i) {
    ASSERT_TRUE(file->Append(MakeTuple(i, 0, 0)).ok());
  }
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();
  // Three rows on the same page -> one miss; one row on another page.
  std::vector<RowId> rids = {0, 1, 2, static_cast<RowId>(tpp * 2)};
  std::vector<Tuple> out;
  ASSERT_TRUE(file->FetchRows(rids, &out).ok());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3].keys[0], tpp * 2);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(FactFileTest, ReopenSeesSyncedHeader) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 64);
  uint32_t file_id;
  {
    auto file = FactFile::Create(&pool, TupleDesc{3});
    ASSERT_TRUE(file.ok());
    file_id = file->file_id();
    for (uint32_t i = 0; i < 500; ++i) {
      Tuple t;
      t.keys[0] = i;
      t.keys[1] = i + 1;
      t.keys[2] = i + 2;
      t.measure = i;
      ASSERT_TRUE(file->Append(t).ok());
    }
    ASSERT_TRUE(file->SyncHeader().ok());
  }
  auto reopened = FactFile::Open(&pool, file_id);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_tuples(), 500u);
  EXPECT_EQ(reopened->desc().num_dims, 3u);
  Tuple t;
  ASSERT_TRUE(reopened->Get(499, &t).ok());
  EXPECT_EQ(t.keys[2], 501u);
}

TEST(FactFileTest, LargeBulkLoadSurvivesSmallPool) {
  // The pool is far smaller than the file; appends and scans must still
  // work through eviction pressure.
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 8);
  auto file = FactFile::Create(&pool, TupleDesc{4});
  ASSERT_TRUE(file.ok());
  const uint32_t n = 20000;
  Random rng(3);
  std::vector<double> sums(1, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    Tuple t;
    for (int d = 0; d < 4; ++d) {
      t.keys[d] = static_cast<uint32_t>(rng.Uniform(100));
    }
    t.measure = static_cast<double>(rng.Uniform(1000));
    sums[0] += t.measure;
    ASSERT_TRUE(file->Append(t).ok());
  }
  double scanned = 0;
  ASSERT_TRUE(file->Scan([&](RowId, const Tuple& t) {
                    scanned += t.measure;
                    return true;
                  })
                  .ok());
  EXPECT_DOUBLE_EQ(scanned, sums[0]);
}

}  // namespace
}  // namespace chunkcache::storage
