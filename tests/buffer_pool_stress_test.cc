// Randomized stress tests for the buffer pool: data written through
// guards must always read back correctly through eviction churn, pins
// must be respected, and flush/evict interleavings must never lose
// updates. A shadow map of expected page contents is the oracle.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace chunkcache::storage {
namespace {

class BufferPoolStressTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BufferPoolStressTest, RandomOpsPreserveAllWrites) {
  const uint32_t frames = GetParam();
  InMemoryDiskManager disk;
  BufferPool pool(&disk, frames);
  const uint32_t file = disk.CreateFile();
  Random rng(frames * 7 + 1);

  std::vector<PageId> pages;
  std::unordered_map<uint64_t, uint64_t> shadow;  // page -> expected stamp
  uint64_t stamp = 1;

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.15 || pages.empty()) {
      auto guard = pool.Allocate(file);
      ASSERT_TRUE(guard.ok());
      const uint64_t value = stamp++;
      *guard->page()->As<uint64_t>() = value;
      guard->MarkDirty();
      shadow[guard->id().AsU64()] = value;
      pages.push_back(guard->id());
    } else if (roll < 0.55) {
      // Read a random page and verify its stamp.
      const PageId id = pages[rng.Uniform(pages.size())];
      auto guard = pool.Fetch(id);
      ASSERT_TRUE(guard.ok());
      ASSERT_EQ(*guard->page()->As<uint64_t>(), shadow[id.AsU64()])
          << "step " << step;
    } else if (roll < 0.9) {
      // Overwrite a random page.
      const PageId id = pages[rng.Uniform(pages.size())];
      auto guard = pool.Fetch(id);
      ASSERT_TRUE(guard.ok());
      const uint64_t value = stamp++;
      *guard->page()->As<uint64_t>() = value;
      guard->MarkDirty();
      shadow[id.AsU64()] = value;
    } else if (roll < 0.95) {
      ASSERT_TRUE(pool.FlushAll().ok());
    } else {
      ASSERT_TRUE(pool.EvictAll().ok());
    }
  }
  // Final verification pass after a hard eviction: everything must be on
  // "disk".
  ASSERT_TRUE(pool.EvictAll().ok());
  for (const PageId id : pages) {
    auto guard = pool.Fetch(id);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(*guard->page()->As<uint64_t>(), shadow[id.AsU64()]);
  }
  EXPECT_GT(pool.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, BufferPoolStressTest,
                         ::testing::Values(2, 3, 8, 64, 1024));

TEST(BufferPoolPinTest, ManyGuardsOnSamePageShareOneFrame) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  const uint32_t file = disk.CreateFile();
  PageId id;
  {
    auto g = pool.Allocate(file);
    ASSERT_TRUE(g.ok());
    id = g->id();
  }
  std::vector<PageGuard> guards;
  for (int i = 0; i < 10; ++i) {
    auto g = pool.Fetch(id);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(*g));
  }
  // 10 pins on one page still leave 3 frames usable.
  auto a = pool.Allocate(file);
  auto b = pool.Allocate(file);
  auto c = pool.Allocate(file);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(pool.Allocate(file).ok());  // now full
  guards.clear();                          // release the shared page
  EXPECT_TRUE(pool.Allocate(file).ok());
}

TEST(BufferPoolPinTest, EvictAllRefusesWhilePinned) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  const uint32_t file = disk.CreateFile();
  auto g = pool.Allocate(file);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(pool.EvictAll().ok());
  g->Release();
  EXPECT_TRUE(pool.EvictAll().ok());
}

TEST(BufferPoolPinTest, DoubleReleaseIsIdempotent) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  const uint32_t file = disk.CreateFile();
  auto g = pool.Allocate(file);
  ASSERT_TRUE(g.ok());
  g->Release();
  g->Release();  // no-op
  EXPECT_FALSE(g->valid());
  // The frame is free exactly once: two more allocations fit.
  auto a = pool.Allocate(file);
  auto b = pool.Allocate(file);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
}

TEST(BufferPoolPinTest, MoveAssignmentReleasesPreviousPin) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  const uint32_t file = disk.CreateFile();
  auto g1 = pool.Allocate(file);
  auto g2 = pool.Allocate(file);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  // Overwriting g1's guard with g2's must unpin g1's page.
  *g1 = std::move(*g2);
  auto g3 = pool.Allocate(file);
  EXPECT_TRUE(g3.ok());  // frame freed by the move-assign
}

}  // namespace
}  // namespace chunkcache::storage
