#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "schema/synthetic.h"
#include "workload/query_generator.h"
#include "workload/session_generator.h"

namespace chunkcache::workload {
namespace {

using backend::StarJoinQuery;
using schema::OrdinalRange;

class GeneratorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
  }

  /// Checks structural validity of a generated query.
  void ExpectValid(const StarJoinQuery& q) {
    ASSERT_EQ(q.group_by.num_dims, 4u);
    bool any_grouped = false;
    for (uint32_t d = 0; d < 4; ++d) {
      const auto& h = schema_->dimension(d).hierarchy;
      ASSERT_LE(q.group_by.levels[d], h.depth());
      const uint32_t level = q.group_by.levels[d];
      if (level == 0) {
        EXPECT_EQ(q.selection[d], (OrdinalRange{0, 0}));
      } else {
        any_grouped = true;
        EXPECT_LE(q.selection[d].begin, q.selection[d].end);
        EXPECT_LT(q.selection[d].end, h.LevelCardinality(level));
      }
    }
    EXPECT_TRUE(any_grouped);
  }

  /// True when every grouped dimension's selection maps into the hot
  /// prefix of the base level.
  bool InHotRegion(const StarJoinQuery& q, double hot_fraction) {
    const double f = std::pow(hot_fraction, 0.25);
    for (uint32_t d = 0; d < 4; ++d) {
      const uint32_t level = q.group_by.levels[d];
      if (level == 0) continue;
      const auto& h = schema_->dimension(d).hierarchy;
      const uint32_t base_card = h.LevelCardinality(h.depth());
      const uint32_t hot_end = std::max<uint32_t>(
          1, static_cast<uint32_t>(std::lround(f * base_card))) - 1;
      if (h.BaseRangeOf(level, q.selection[d]).end > hot_end) return false;
    }
    return true;
  }

  std::unique_ptr<schema::StarSchema> schema_;
};

TEST_F(GeneratorFixture, GeneratesStructurallyValidQueries) {
  QueryGenerator gen(schema_.get(), EqprStream(7));
  for (int i = 0; i < 2000; ++i) ExpectValid(gen.Next());
}

TEST_F(GeneratorFixture, DeterministicForFixedSeed) {
  QueryGenerator a(schema_.get(), EqprStream(42));
  QueryGenerator b(schema_.get(), EqprStream(42));
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(a.Next() == b.Next()) << "diverged at query " << i;
  }
}

TEST_F(GeneratorFixture, SeedsProduceDifferentStreams) {
  QueryGenerator a(schema_.get(), EqprStream(1));
  QueryGenerator b(schema_.get(), EqprStream(2));
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 10);
}

TEST_F(GeneratorFixture, RandomStreamHasNoProximity) {
  QueryGenerator gen(schema_.get(), RandomStream(3));
  for (int i = 0; i < 500; ++i) {
    gen.Next();
    EXPECT_FALSE(gen.last_was_proximity());
  }
}

TEST_F(GeneratorFixture, ProximityRateMatchesMix) {
  struct Case {
    WorkloadOptions opts;
    double expected;
  };
  for (const Case& c : {Case{EqprStream(5), 0.5},
                        Case{ProximityStream(5), 0.8}}) {
    QueryGenerator gen(schema_.get(), c.opts);
    int proximity = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      gen.Next();
      proximity += gen.last_was_proximity();
    }
    EXPECT_NEAR(static_cast<double>(proximity) / n, c.expected, 0.03);
  }
}

TEST_F(GeneratorFixture, HotRegionProbabilityHonored) {
  for (double p : {0.6, 0.8, 1.0}) {
    WorkloadOptions opts = RandomStream(11);
    opts.hot_access_prob = p;
    QueryGenerator gen(schema_.get(), opts);
    int hot = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const StarJoinQuery q = gen.Next();
      if (gen.last_was_hot()) {
        EXPECT_TRUE(InHotRegion(q, opts.hot_fraction));
        ++hot;
      }
    }
    EXPECT_NEAR(static_cast<double>(hot) / n, p, 0.03);
  }
}

TEST_F(GeneratorFixture, ProximityKeepsAggregationLevel) {
  QueryGenerator gen(schema_.get(), ProximityStream(13));
  StarJoinQuery prev = gen.Next();
  for (int i = 0; i < 1000; ++i) {
    StarJoinQuery q = gen.Next();
    if (gen.last_was_proximity()) {
      EXPECT_TRUE(q.group_by == prev.group_by);
      // Exactly one dimension's selection may have shifted; widths kept.
      for (uint32_t d = 0; d < 4; ++d) {
        EXPECT_EQ(q.selection[d].size(), prev.selection[d].size());
      }
    }
    prev = q;
  }
}

TEST_F(GeneratorFixture, ProximityInheritsHotRegion) {
  WorkloadOptions opts = ProximityStream(17);
  opts.hot_access_prob = 1.0;  // Q100: everything must stay hot
  QueryGenerator gen(schema_.get(), opts);
  for (int i = 0; i < 2000; ++i) {
    const StarJoinQuery q = gen.Next();
    EXPECT_TRUE(InHotRegion(q, opts.hot_fraction)) << "query " << i;
  }
}

TEST_F(GeneratorFixture, StreamPresetsMatchTable2) {
  EXPECT_DOUBLE_EQ(RandomStream(1).proximity_prob, 0.0);
  EXPECT_DOUBLE_EQ(EqprStream(1).proximity_prob, 0.5);
  EXPECT_DOUBLE_EQ(ProximityStream(1).proximity_prob, 0.8);
  EXPECT_DOUBLE_EQ(RandomStream(1).hot_fraction, 0.2);
}

TEST_F(GeneratorFixture, CoversManyGroupBys) {
  QueryGenerator gen(schema_.get(), RandomStream(29));
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(gen.Next().group_by.ToString());
  // 4*3*4*3 = 144 possible group-bys minus the all-ALL one; a random
  // stream should visit a large share.
  EXPECT_GT(seen.size(), 100u);
}

// ---------------------------- SessionGenerator ------------------------------

TEST_F(GeneratorFixture, SessionPairsShareTheRegion) {
  SessionOptions opts;
  opts.drill_down = true;
  opts.seed = 5;
  SessionGenerator gen(schema_.get(), opts);
  for (int s = 0; s < 200; ++s) {
    const StarJoinQuery coarse = gen.Next();
    EXPECT_TRUE(gen.last_started_session());
    const StarJoinQuery fine = gen.Next();
    EXPECT_FALSE(gen.last_started_session());
    for (uint32_t d = 0; d < 4; ++d) {
      const auto& h = schema_->dimension(d).hierarchy;
      // Fine view is exactly one level deeper (capped at depth).
      EXPECT_EQ(fine.group_by.levels[d],
                std::min<uint32_t>(coarse.group_by.levels[d] + 1,
                                   h.depth()));
      // Both views cover the same base-level cells on every dimension.
      EXPECT_EQ(h.BaseRangeOf(coarse.group_by.levels[d],
                              coarse.selection[d]),
                h.BaseRangeOf(fine.group_by.levels[d], fine.selection[d]))
          << "session " << s << " dim " << d;
    }
  }
}

TEST_F(GeneratorFixture, RollUpSessionEmitsFineFirst) {
  SessionOptions opts;
  opts.drill_down = false;
  opts.seed = 6;
  SessionGenerator gen(schema_.get(), opts);
  const StarJoinQuery first = gen.Next();
  const StarJoinQuery second = gen.Next();
  for (uint32_t d = 0; d < 4; ++d) {
    EXPECT_GE(first.group_by.levels[d], second.group_by.levels[d]);
  }
}

TEST_F(GeneratorFixture, SessionGeneratorIsDeterministic) {
  SessionOptions opts;
  opts.seed = 7;
  SessionGenerator a(schema_.get(), opts);
  SessionGenerator b(schema_.get(), opts);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(a.Next() == b.Next());
}

TEST_F(GeneratorFixture, SessionWidthsRespectOptions) {
  SessionOptions opts;
  opts.min_width = 3;
  opts.max_width = 3;
  opts.seed = 8;
  SessionGenerator gen(schema_.get(), opts);
  for (int i = 0; i < 50; ++i) {
    const StarJoinQuery q = gen.Next();
    if (!gen.last_started_session()) continue;  // check coarse views only
    for (uint32_t d = 0; d < 4; ++d) {
      EXPECT_EQ(q.selection[d].size(), 3u);
    }
  }
}

TEST_F(GeneratorFixture, SessionStreamHashMatchesGolden) {
  // Golden hash of the default serving workload stream (seed 1, 256
  // queries). This pins the generator's output bit-for-bit across runs and
  // platforms: if a refactor reorders rng draws or changes rounding, this
  // fails before any latency comparison is silently invalidated.
  SessionOptions opts;
  const uint64_t h = SessionStreamHash(*schema_, opts, 256);
  EXPECT_EQ(h, 0x9b4c4f7dabfb92f0ull);
  // And the hash is a pure function: a second fresh generator agrees.
  EXPECT_EQ(SessionStreamHash(*schema_, opts, 256), h);
}

TEST_F(GeneratorFixture, SessionStreamIndependentOfConsumerThreads) {
  // The serving harness generates on one thread and fans queries out to a
  // variable number of client threads. The stream must be a function of
  // (schema, options) only — materialize it once, then check that hashing
  // any prefix from a shared vector consumed by 1, 2, or 8 threads sees
  // the identical queries (i.e. generation happened before, and
  // independently of, consumption).
  SessionOptions opts;
  opts.seed = 42;
  SessionGenerator gen(schema_.get(), opts);
  std::vector<StarJoinQuery> stream;
  for (int i = 0; i < 128; ++i) stream.push_back(gen.Next());

  uint64_t want = 0xcbf29ce484222325ull;
  for (const auto& q : stream) want = HashQuery(q, want);
  EXPECT_EQ(SessionStreamHash(*schema_, opts, 128), want);

  for (int threads : {1, 2, 8}) {
    std::atomic<uint64_t> consumed{0};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    SessionGenerator replay(schema_.get(), opts);
    std::vector<StarJoinQuery> replayed;
    for (int i = 0; i < 128; ++i) replayed.push_back(replay.Next());
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const uint64_t i = consumed.fetch_add(1);
          if (i >= stream.size()) return;
          if (!(stream[i] == replayed[i])) mismatches.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(mismatches.load(), 0) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace chunkcache::workload
