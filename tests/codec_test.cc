// Property tests for the chunk-payload codec layer: every codec must
// round-trip losslessly (bit-level for doubles), the fast decoder must
// agree with the checked reference decoder on every blob, and arbitrarily
// corrupted input must come back as Status — never a crash or over-read.

#include "storage/codec.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "common/simd.h"
#include "gtest/gtest.h"
#include "storage/agg_columns.h"

namespace chunkcache::storage::codec {
namespace {

// Bit-level equality: NaNs and signed zeros must survive exactly, so
// operator== on doubles is not good enough.
bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

void ExpectAggBitIdentical(const AggColumns& a, const AggColumns& b) {
  ASSERT_EQ(a.num_dims(), b.num_dims());
  ASSERT_EQ(a.size(), b.size());
  for (uint32_t d = 0; d < a.num_dims(); ++d) {
    EXPECT_EQ(a.coords(d), b.coords(d)) << "dim " << d;
  }
  EXPECT_TRUE(BitsEqual(a.sums(), b.sums()));
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_TRUE(BitsEqual(a.mins(), b.mins()));
  EXPECT_TRUE(BitsEqual(a.maxs(), b.maxs()));
}

template <typename T>
void RoundTripU32(const std::vector<T>& v) {
  std::vector<uint8_t> buf;
  EncodeU32Column(v.data(), v.size(), &buf);
  for (DecodeMode mode : {DecodeMode::kFast, DecodeMode::kReference}) {
    const uint8_t* p = buf.data();
    std::vector<uint32_t> out;
    ASSERT_TRUE(
        DecodeU32Column(&p, buf.data() + buf.size(), v.size(), &out, mode)
            .ok());
    EXPECT_EQ(p, buf.data() + buf.size()) << "column not fully consumed";
    EXPECT_EQ(out, v);
  }
}

TEST(CodecColumn, U32Distributions) {
  RoundTripU32(std::vector<uint32_t>{});                  // empty
  RoundTripU32(std::vector<uint32_t>{42});                // single row
  RoundTripU32(std::vector<uint32_t>(1000, 7));           // constant (dict)
  std::vector<uint32_t> sorted(777);
  for (size_t i = 0; i < sorted.size(); ++i) sorted[i] = uint32_t(3 * i);
  RoundTripU32(sorted);                                   // linear (dod)
  std::mt19937 rng(7);
  std::vector<uint32_t> lowcard(2000);
  for (auto& x : lowcard) x = rng() % 17;                 // dict-packable
  RoundTripU32(lowcard);
  std::vector<uint32_t> random(1500);
  for (auto& x : random) x = rng();                       // raw fallback
  RoundTripU32(random);
  RoundTripU32(std::vector<uint32_t>{0, std::numeric_limits<uint32_t>::max(),
                                     0, std::numeric_limits<uint32_t>::max()});
}

TEST(CodecColumn, U64Distributions) {
  for (auto v : {std::vector<uint64_t>{},
                 std::vector<uint64_t>{1},
                 std::vector<uint64_t>(500, 1),  // counts are mostly 1
                 std::vector<uint64_t>{0, std::numeric_limits<uint64_t>::max(),
                                       1, (1ull << 63)}}) {
    std::vector<uint8_t> buf;
    EncodeU64Column(v.data(), v.size(), &buf);
    for (DecodeMode mode : {DecodeMode::kFast, DecodeMode::kReference}) {
      const uint8_t* p = buf.data();
      std::vector<uint64_t> out;
      ASSERT_TRUE(
          DecodeU64Column(&p, buf.data() + buf.size(), v.size(), &out, mode)
              .ok());
      EXPECT_EQ(out, v);
    }
  }
}

TEST(CodecColumn, F64EdgeValuesBitExact) {
  const std::vector<double> v = {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::epsilon(),
      1.0,
      1.0000000000000002,  // adjacent representable values: 1-bit XOR
  };
  std::vector<uint8_t> buf;
  EncodeF64Column(v.data(), v.size(), &buf);
  for (DecodeMode mode : {DecodeMode::kFast, DecodeMode::kReference}) {
    const uint8_t* p = buf.data();
    std::vector<double> out;
    ASSERT_TRUE(
        DecodeF64Column(&p, buf.data() + buf.size(), v.size(), &out, mode)
            .ok());
    EXPECT_TRUE(BitsEqual(out, v));
  }
}

TEST(CodecColumn, FastMatchesReferenceOnRandomColumns) {
  std::mt19937 rng(123);
  for (int iter = 0; iter < 50; ++iter) {
    const size_t n = rng() % 300;
    std::vector<double> v(n);
    for (auto& x : v) {
      switch (rng() % 4) {
        case 0: x = static_cast<double>(rng() % 1000); break;
        case 1: x = std::ldexp(static_cast<double>(rng()), -(int)(rng() % 60));
                break;
        case 2: x = -static_cast<double>(rng()); break;
        default: {
          uint64_t bits = (static_cast<uint64_t>(rng()) << 32) | rng();
          std::memcpy(&x, &bits, 8);  // arbitrary bit pattern, NaNs included
        }
      }
    }
    std::vector<uint8_t> buf;
    EncodeF64Column(v.data(), v.size(), &buf);
    std::vector<double> fast, ref;
    const uint8_t* pf = buf.data();
    const uint8_t* pr = buf.data();
    ASSERT_TRUE(DecodeF64Column(&pf, buf.data() + buf.size(), n, &fast,
                                DecodeMode::kFast)
                    .ok());
    ASSERT_TRUE(DecodeF64Column(&pr, buf.data() + buf.size(), n, &ref,
                                DecodeMode::kReference)
                    .ok());
    EXPECT_TRUE(BitsEqual(fast, ref));
    EXPECT_TRUE(BitsEqual(fast, v));
  }
}

AggColumns RandomAgg(std::mt19937& rng, uint32_t num_dims, size_t rows,
                     bool sorted) {
  AggColumns cols(num_dims);
  cols.Reserve(rows);
  std::array<uint32_t, kMaxDims> c{};
  for (size_t i = 0; i < rows; ++i) {
    for (uint32_t d = 0; d < num_dims; ++d) c[d] = rng() % 50;
    const double sum = static_cast<double>(rng()) / 7.0;
    const uint64_t count = 1 + rng() % 100;
    cols.PushCell(c.data(), sum, count, sum / count - 1.0, sum / count + 1.0);
  }
  if (sorted) cols.SortRowMajor();
  return cols;
}

TEST(CodecBlob, AggColumnsRoundTripProperty) {
  std::mt19937 rng(99);
  for (int iter = 0; iter < 60; ++iter) {
    const uint32_t num_dims = 1 + rng() % kMaxDims;
    const size_t rows = rng() % 400;
    const AggColumns cols = RandomAgg(rng, num_dims, rows, (iter % 2) == 0);
    std::vector<uint8_t> blob;
    CodecStats cs;
    EncodeAggColumns(cols, &blob, &cs);
    uint64_t raw_in = 0, enc_out = 0;
    for (size_t c = 0; c < kNumCodecs; ++c) {
      raw_in += cs.raw_bytes[c];
      enc_out += cs.encoded_bytes[c];
    }
    EXPECT_EQ(raw_in, RawPayloadBytes(cols));  // accounting is complete
    EXPECT_LE(enc_out, blob.size());
    for (DecodeMode mode : {DecodeMode::kFast, DecodeMode::kReference}) {
      auto back = DecodeAggColumns(blob.data(), blob.size(), mode);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      ExpectAggBitIdentical(cols, *back);
    }
  }
}

TEST(CodecBlob, AggColumnsEmptyAndSingleRow) {
  for (size_t rows : {size_t{0}, size_t{1}}) {
    std::mt19937 rng(5);
    const AggColumns cols = RandomAgg(rng, 3, rows, true);
    std::vector<uint8_t> blob;
    EncodeAggColumns(cols, &blob);
    auto back = DecodeAggColumns(blob.data(), blob.size());
    ASSERT_TRUE(back.ok());
    ExpectAggBitIdentical(cols, *back);
  }
}

TEST(CodecBlob, TupleColumnsRoundTripProperty) {
  std::mt19937 rng(31);
  for (int iter = 0; iter < 40; ++iter) {
    TupleColumns cols;
    cols.num_dims = 1 + rng() % kMaxDims;
    const size_t rows = rng() % 300;
    cols.Reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      Tuple t;
      for (uint32_t d = 0; d < cols.num_dims; ++d) t.keys[d] = rng() % 1000;
      t.measure = static_cast<double>(rng()) / 3.0;
      cols.PushTuple(t);
    }
    std::vector<uint8_t> blob;
    EncodeTupleColumns(cols, &blob);
    for (DecodeMode mode : {DecodeMode::kFast, DecodeMode::kReference}) {
      auto back = DecodeTupleColumns(blob.data(), blob.size(), mode);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      ASSERT_EQ(back->num_dims, cols.num_dims);
      ASSERT_EQ(back->size(), cols.size());
      for (uint32_t d = 0; d < cols.num_dims; ++d) {
        EXPECT_EQ(back->keys[d], cols.keys[d]);
      }
      EXPECT_TRUE(BitsEqual(back->measure, cols.measure));
    }
  }
}

// Fuzz-style robustness: truncations and bit flips of a valid blob must
// always produce a Status (the CRC rejects essentially all of them), and
// must never crash or read out of bounds (the CI ASAN job enforces the
// latter for real).
TEST(CodecBlob, TruncatedBlobNeverCrashes) {
  std::mt19937 rng(404);
  const AggColumns cols = RandomAgg(rng, 4, 200, true);
  std::vector<uint8_t> blob;
  EncodeAggColumns(cols, &blob);
  for (size_t len = 0; len < blob.size(); ++len) {
    for (DecodeMode mode : {DecodeMode::kFast, DecodeMode::kReference}) {
      auto res = DecodeAggColumns(blob.data(), len, mode);
      EXPECT_FALSE(res.ok()) << "truncated prefix of " << len << " decoded";
    }
  }
}

TEST(CodecBlob, BitFlippedBlobNeverCrashes) {
  std::mt19937 rng(505);
  const AggColumns cols = RandomAgg(rng, 3, 150, true);
  std::vector<uint8_t> blob;
  EncodeAggColumns(cols, &blob);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bad = blob;
    const int flips = 1 + rng() % 4;
    for (int f = 0; f < flips; ++f) {
      bad[rng() % bad.size()] ^= uint8_t(1u << (rng() % 8));
    }
    for (DecodeMode mode : {DecodeMode::kFast, DecodeMode::kReference}) {
      auto res = DecodeAggColumns(bad.data(), bad.size(), mode);
      if (res.ok()) {
        // A flip pair can cancel out (same byte twice); result must match.
        ExpectAggBitIdentical(cols, *res);
      }
    }
  }
}

TEST(CodecBlob, RandomGarbageNeverCrashes) {
  std::mt19937 rng(606);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<uint8_t> junk(rng() % 200);
    for (auto& b : junk) b = uint8_t(rng());
    auto a = DecodeAggColumns(junk.data(), junk.size());
    auto t = DecodeTupleColumns(junk.data(), junk.size());
    // Random bytes essentially never carry a valid CRC32C trailer.
    EXPECT_FALSE(a.ok());
    EXPECT_FALSE(t.ok());
  }
}

TEST(CodecBlob, WrongFormatTagRejected) {
  std::mt19937 rng(9);
  const AggColumns cols = RandomAgg(rng, 2, 10, true);
  std::vector<uint8_t> blob;
  EncodeAggColumns(cols, &blob);
  // An Agg blob handed to the Tuple decoder must fail cleanly even though
  // its CRC is valid.
  EXPECT_FALSE(DecodeTupleColumns(blob.data(), blob.size()).ok());
}

// ---------------------- scalar == AVX2 decode parity ------------------------

bool Avx2Available() {
  return simd::DetectedLevel() == simd::IsaLevel::kAvx2;
}

/// Decodes `buf` with the checked reference decoder, then with the fast
/// decoder pinned to scalar and to AVX2 dispatch, and requires byte-level
/// agreement (values, consumed length, ok-ness). The payload is re-homed
/// at odd offsets so the vector loads also run from unaligned starts.
template <typename T>
void ExpectDecodeParity(const std::vector<uint8_t>& buf, size_t n,
                        Status (*decode)(const uint8_t**, const uint8_t*,
                                         size_t, std::vector<T>*,
                                         DecodeMode)) {
  for (size_t off : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
    std::vector<uint8_t> shifted(off + buf.size());
    if (!buf.empty()) std::memcpy(shifted.data() + off, buf.data(), buf.size());
    const uint8_t* base = shifted.data() + off;
    const uint8_t* end = base + buf.size();

    std::vector<T> ref;
    const uint8_t* pr = base;
    const Status sr = decode(&pr, end, n, &ref, DecodeMode::kReference);

    for (simd::IsaLevel lvl :
         {simd::IsaLevel::kScalar, simd::IsaLevel::kAvx2}) {
      simd::ScopedLevel pin(lvl);
      std::vector<T> fast;
      const uint8_t* pf = base;
      const Status sf = decode(&pf, end, n, &fast, DecodeMode::kFast);
      ASSERT_EQ(sf.ok(), sr.ok()) << "offset " << off;
      if (!sr.ok()) continue;
      ASSERT_EQ(pf - base, pr - base) << "consumed length diverged";
      ASSERT_EQ(fast.size(), ref.size());
      if (!ref.empty()) {
        EXPECT_EQ(
            std::memcmp(fast.data(), ref.data(), ref.size() * sizeof(T)), 0)
            << "offset " << off << " level " << int(lvl);
      }
    }
  }
}

TEST(CodecSimd, U32DecodeParityAcrossCodecs) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937 rng(99);
  for (size_t n : {1, 3, 4, 5, 7, 8, 9, 31, 33, 100, 257, 1023}) {
    std::vector<std::vector<uint32_t>> cols;
    cols.emplace_back(n, 7u);  // constant -> 1-bit dict
    std::vector<uint32_t> lowcard(n);
    for (auto& x : lowcard) x = rng() % 17;  // dict, 5-bit indexes
    cols.push_back(std::move(lowcard));
    std::vector<uint32_t> sorted(n);
    for (size_t i = 0; i < n; ++i) sorted[i] = uint32_t(3 * i + rng() % 3);
    cols.push_back(std::move(sorted));  // near-linear -> delta / dod
    std::vector<uint32_t> random(n);
    for (auto& x : random) x = rng();  // raw fallback
    cols.push_back(std::move(random));
    for (const auto& v : cols) {
      std::vector<uint8_t> buf;
      EncodeU32Column(v.data(), v.size(), &buf);
      ExpectDecodeParity<uint32_t>(buf, n, &DecodeU32Column);
    }
  }
  // Max-width dict: up to 4096 distinct values forces 12-bit packed
  // indexes, the widest shift the AVX2 unpacker ever performs.
  std::vector<uint32_t> wide(5000);
  for (auto& x : wide) x = rng() % 4096;
  std::vector<uint8_t> buf;
  EncodeU32Column(wide.data(), wide.size(), &buf);
  ExpectDecodeParity<uint32_t>(buf, wide.size(), &DecodeU32Column);
}

TEST(CodecSimd, U64DecodeParityAcrossCodecs) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937 rng(41);
  for (size_t n : {1, 3, 5, 8, 9, 100, 1023}) {
    std::vector<std::vector<uint64_t>> cols;
    cols.emplace_back(n, 1ull);  // counts are mostly 1
    std::vector<uint64_t> increasing(n);
    for (size_t i = 0; i < n; ++i) {
      increasing[i] = (uint64_t(i) << 20) + rng() % 1024;
    }
    cols.push_back(std::move(increasing));
    std::vector<uint64_t> random(n);
    for (auto& x : random) {
      x = (static_cast<uint64_t>(rng()) << 32) | rng();
    }
    cols.push_back(std::move(random));
    // Wrap-around deltas: zigzag + mod-2^64 prefix sum must still agree.
    std::vector<uint64_t> extremes(n);
    for (size_t i = 0; i < n; ++i) {
      extremes[i] = (i % 2) ? std::numeric_limits<uint64_t>::max() : 0;
    }
    cols.push_back(std::move(extremes));
    for (const auto& v : cols) {
      std::vector<uint8_t> buf;
      EncodeU64Column(v.data(), v.size(), &buf);
      ExpectDecodeParity<uint64_t>(buf, n, &DecodeU64Column);
    }
  }
}

TEST(CodecSimd, F64DecodeParityXorAndEdgeValues) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937 rng(123);
  for (size_t n : {1, 2, 3, 4, 5, 7, 8, 9, 31, 33, 100, 511}) {
    std::vector<double> v(n);
    for (auto& x : v) {
      switch (rng() % 5) {
        case 0: x = static_cast<double>(rng() % 1000); break;
        case 1: x = std::numeric_limits<double>::quiet_NaN(); break;
        case 2: x = (rng() % 2) ? std::numeric_limits<double>::infinity()
                                : -std::numeric_limits<double>::infinity();
                break;
        case 3: x = std::numeric_limits<double>::denorm_min(); break;
        default: {
          uint64_t bits = (static_cast<uint64_t>(rng()) << 32) | rng();
          std::memcpy(&x, &bits, 8);  // arbitrary bit pattern
        }
      }
    }
    std::vector<uint8_t> buf;
    EncodeF64Column(v.data(), v.size(), &buf);
    ExpectDecodeParity<double>(buf, n, &DecodeF64Column);
  }
}

TEST(CodecSimd, CorruptedBlobParityNeverCrashes) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937 rng(2026);
  std::vector<uint32_t> v(300);
  for (auto& x : v) x = rng() % 64;  // dict codec, the path with a gather
  std::vector<uint8_t> good;
  EncodeU32Column(v.data(), v.size(), &good);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> bad = good;
    // Flip a byte and/or truncate; the scalar and AVX2 fast decoders must
    // agree on ok-ness and, when both still decode, on the decoded bytes.
    // (kReference is intentionally left out: the checked decoder may be
    // stricter than kFast on malformed input, which is not a SIMD bug.)
    bad[rng() % bad.size()] ^= uint8_t(1 + rng() % 255);
    if (rng() % 3 == 0) bad.resize(rng() % (bad.size() + 1));

    std::vector<uint32_t> scalar_out, avx2_out;
    Status scalar_status, avx2_status;
    {
      simd::ScopedLevel pin(simd::IsaLevel::kScalar);
      const uint8_t* p = bad.data();
      scalar_status = DecodeU32Column(&p, bad.data() + bad.size(), v.size(),
                                      &scalar_out, DecodeMode::kFast);
    }
    {
      simd::ScopedLevel pin(simd::IsaLevel::kAvx2);
      const uint8_t* p = bad.data();
      avx2_status = DecodeU32Column(&p, bad.data() + bad.size(), v.size(),
                                    &avx2_out, DecodeMode::kFast);
    }
    ASSERT_EQ(scalar_status.ok(), avx2_status.ok()) << "iter " << iter;
    if (scalar_status.ok()) {
      EXPECT_EQ(scalar_out, avx2_out) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace chunkcache::storage::codec
