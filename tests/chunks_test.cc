#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "chunks/chunk_grid.h"
#include "chunks/chunk_ranges.h"
#include "chunks/chunking_scheme.h"
#include "chunks/group_by_spec.h"
#include "schema/synthetic.h"

namespace chunkcache::chunks {
namespace {

using schema::BuildPaperSchema;
using schema::BuildSyntheticDimension;
using schema::OrdinalRange;
using schema::StarSchema;

// ------------------------------ GroupBySpec ---------------------------------

TEST(GroupBySpecTest, EqualityAndHash) {
  GroupBySpec a{{1, 2, 0, 1}, 4};
  GroupBySpec b{{1, 2, 0, 1}, 4};
  GroupBySpec c{{1, 2, 0, 2}, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  GroupBySpecHash h;
  EXPECT_EQ(h(a), h(b));
}

TEST(GroupBySpecTest, CoarserOrEqual) {
  GroupBySpec coarse{{1, 0, 2, 1}, 4};
  GroupBySpec fine{{3, 2, 2, 2}, 4};
  EXPECT_TRUE(coarse.CoarserOrEqual(fine));
  EXPECT_FALSE(fine.CoarserOrEqual(coarse));
  EXPECT_TRUE(coarse.CoarserOrEqual(coarse));
  GroupBySpec mixed{{0, 2, 3, 0}, 4};  // finer on dim1/2, coarser on dim0/3
  EXPECT_FALSE(mixed.CoarserOrEqual(coarse));
  EXPECT_FALSE(coarse.CoarserOrEqual(mixed));
}

TEST(GroupBySpecTest, ToString) {
  GroupBySpec s{{2, 0, 3, 1}, 4};
  EXPECT_EQ(s.ToString(), "(2,0,3,1)");
}

// --------------------------- DimensionChunking ------------------------------

// The Figure 5/6 scenario: a 3-level hierarchy where level 3 wants ranges of
// size 3 and levels 1-2 ranges of size 2. Uniform division would break the
// hierarchy mapping; CreateChunkRanges must realign at each level.
TEST(DimensionChunkingTest, HierarchyAlignedRanges) {
  // Hierarchy: level1 = 4 values, level2 = 8 (fanout 2), level3 = 24
  // (fanout 3).
  auto dim = BuildSyntheticDimension("A", {4, 8, 24});
  ASSERT_TRUE(dim.ok());
  ChunkRangeSizes sizes{{2, 2, 3}};
  auto dc = DimensionChunking::Build(dim->hierarchy, sizes);
  ASSERT_TRUE(dc.ok());

  // Level 1: 4 values / size 2 = 2 ranges.
  EXPECT_EQ(dc->NumRanges(1), 2u);
  EXPECT_EQ(dc->Range(1, 0), (OrdinalRange{0, 1}));
  EXPECT_EQ(dc->Range(1, 1), (OrdinalRange{2, 3}));
  // Each level-1 range maps to 4 level-2 values -> 2 ranges of size 2 each.
  EXPECT_EQ(dc->NumRanges(2), 4u);
  EXPECT_EQ(dc->ChildRangeSpan(1, 0), (OrdinalRange{0, 1}));
  EXPECT_EQ(dc->ChildRangeSpan(1, 1), (OrdinalRange{2, 3}));
  // Each level-2 range maps to 6 level-3 values -> 2 ranges of size 3.
  EXPECT_EQ(dc->NumRanges(3), 8u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(dc->ChildRangeSpan(2, i), (OrdinalRange{2 * i, 2 * i + 1}));
  }
}

// Paper's exact Figure 5 pathology: 12 base values under ranges of 3 whose
// parents (6 values) use ranges of 2. With naive uniform ranges, base range
// R3,1 = {3,4,5} straddles parents {1,2} -> parents' ranges would not map to
// disjoint child range sets. CreateChunkRanges subdivides per parent range
// instead, so every parent range maps to a whole number of child ranges.
TEST(DimensionChunkingTest, RangesNestWithinParentRanges) {
  auto dim = BuildSyntheticDimension("A", {3, 6, 12});
  ASSERT_TRUE(dim.ok());
  ChunkRangeSizes sizes{{2, 2, 3}};
  auto dc = DimensionChunking::Build(dim->hierarchy, sizes);
  ASSERT_TRUE(dc.ok());
  const auto& h = dim->hierarchy;
  for (uint32_t level = 1; level < h.depth(); ++level) {
    for (uint32_t i = 0; i < dc->NumRanges(level); ++i) {
      const OrdinalRange parent = dc->Range(level, i);
      const OrdinalRange span = dc->ChildRangeSpan(level, i);
      // Union of the child ranges must equal exactly the values the parent
      // range maps to in the hierarchy.
      const OrdinalRange mapped{h.ChildRange(level, parent.begin).begin,
                                h.ChildRange(level, parent.end).end};
      EXPECT_EQ(dc->Range(level + 1, span.begin).begin, mapped.begin);
      EXPECT_EQ(dc->Range(level + 1, span.end).end, mapped.end);
      // And consecutive child ranges must tile it without gaps.
      for (uint32_t j = span.begin; j < span.end; ++j) {
        EXPECT_EQ(dc->Range(level + 1, j).end + 1,
                  dc->Range(level + 1, j + 1).begin);
      }
    }
  }
}

TEST(DimensionChunkingTest, RangesPartitionEveryLevel) {
  auto schema = BuildPaperSchema();
  ASSERT_TRUE(schema.ok());
  for (uint32_t d = 0; d < schema->num_dims(); ++d) {
    const auto& h = schema->dimension(d).hierarchy;
    ChunkRangeSizes sizes;
    for (uint32_t l = 1; l <= h.depth(); ++l) {
      sizes.per_level.push_back(std::max(1u, h.LevelCardinality(l) / 10));
    }
    auto dc = DimensionChunking::Build(h, sizes);
    ASSERT_TRUE(dc.ok());
    for (uint32_t l = 1; l <= h.depth(); ++l) {
      uint32_t next = 0;
      for (uint32_t i = 0; i < dc->NumRanges(l); ++i) {
        const OrdinalRange r = dc->Range(l, i);
        EXPECT_EQ(r.begin, next);
        next = r.end + 1;
        // range_of_value agrees with the ranges.
        for (uint32_t v = r.begin; v <= r.end; ++v) {
          EXPECT_EQ(dc->RangeOfValue(l, v), i);
        }
      }
      EXPECT_EQ(next, h.LevelCardinality(l));
    }
  }
}

TEST(DimensionChunkingTest, SpanAtLevelComposes) {
  auto dim = BuildSyntheticDimension("A", {4, 8, 24});
  ASSERT_TRUE(dim.ok());
  ChunkRangeSizes sizes{{2, 2, 3}};
  auto dc = DimensionChunking::Build(dim->hierarchy, sizes);
  ASSERT_TRUE(dc.ok());
  // Level-1 range 0 -> level-2 ranges {0,1} -> level-3 ranges {0..3}.
  EXPECT_EQ(dc->SpanAtLevel(1, 0, 2), (OrdinalRange{0, 1}));
  EXPECT_EQ(dc->SpanAtLevel(1, 0, 3), (OrdinalRange{0, 3}));
  EXPECT_EQ(dc->BaseRangeSpan(1, 1), (OrdinalRange{4, 7}));
  EXPECT_EQ(dc->SpanAtLevel(2, 3, 3), (OrdinalRange{6, 7}));
  EXPECT_EQ(dc->SpanAtLevel(3, 5, 3), (OrdinalRange{5, 5}));  // identity
  // From ALL: whole base.
  EXPECT_EQ(dc->SpanAtLevel(0, 0, 3), (OrdinalRange{0, 7}));
}

TEST(DimensionChunkingTest, RangeSizeOneAndFullLevel) {
  auto dim = BuildSyntheticDimension("A", {4, 8});
  ASSERT_TRUE(dim.ok());
  {
    ChunkRangeSizes sizes{{1, 1}};  // every value its own range
    auto dc = DimensionChunking::Build(dim->hierarchy, sizes);
    ASSERT_TRUE(dc.ok());
    EXPECT_EQ(dc->NumRanges(1), 4u);
    EXPECT_EQ(dc->NumRanges(2), 8u);
  }
  {
    ChunkRangeSizes sizes{{4, 8}};  // one range per parent mapping
    auto dc = DimensionChunking::Build(dim->hierarchy, sizes);
    ASSERT_TRUE(dc.ok());
    EXPECT_EQ(dc->NumRanges(1), 1u);
    EXPECT_EQ(dc->NumRanges(2), 1u);
  }
  {
    ChunkRangeSizes sizes{{100, 100}};  // oversize clamps to the level
    auto dc = DimensionChunking::Build(dim->hierarchy, sizes);
    ASSERT_TRUE(dc.ok());
    EXPECT_EQ(dc->NumRanges(1), 1u);
    EXPECT_EQ(dc->NumRanges(2), 1u);
  }
}

TEST(DimensionChunkingTest, RejectsWrongSizeCount) {
  auto dim = BuildSyntheticDimension("A", {4, 8});
  ASSERT_TRUE(dim.ok());
  ChunkRangeSizes sizes{{2}};
  EXPECT_FALSE(DimensionChunking::Build(dim->hierarchy, sizes).ok());
}

// -------------------------------- ChunkGrid ---------------------------------

TEST(ChunkGridTest, Figure8Numbering) {
  // Figure 8: 2-d grid; with row-major numbering (0,0)->0 and (1,2)->6 when
  // the second dimension has 4 ranges.
  GroupBySpec spec{{1, 1}, 2};
  ChunkGrid grid(spec, {3, 4});
  EXPECT_EQ(grid.num_chunks(), 12u);
  EXPECT_EQ(grid.GetChunkNum({0, 0}), 0u);
  EXPECT_EQ(grid.GetChunkNum({1, 2}), 6u);
  EXPECT_EQ(grid.GetChunkNum({2, 3}), 11u);
  for (uint64_t n = 0; n < grid.num_chunks(); ++n) {
    EXPECT_EQ(grid.GetChunkNum(grid.DecodeChunkNum(n)), n);
  }
}

TEST(ChunkGridTest, BoxEnumeratesCrossProduct) {
  GroupBySpec spec{{1, 1}, 2};
  ChunkGrid grid(spec, {4, 5});
  ChunkBox box;
  box.num_dims = 2;
  box.spans[0] = OrdinalRange{1, 2};
  box.spans[1] = OrdinalRange{3, 4};
  EXPECT_EQ(box.NumChunks(), 4u);
  std::set<uint64_t> nums;
  box.ForEach(grid, [&](uint64_t num, const ChunkCoords& c) {
    EXPECT_GE(c[0], 1u);
    EXPECT_LE(c[0], 2u);
    EXPECT_GE(c[1], 3u);
    EXPECT_LE(c[1], 4u);
    nums.insert(num);
  });
  EXPECT_EQ(nums, (std::set<uint64_t>{8, 9, 13, 14}));
}

TEST(ChunkGridTest, SingleChunkBox) {
  GroupBySpec spec{{1}, 1};
  ChunkGrid grid(spec, {7});
  ChunkBox box;
  box.num_dims = 1;
  box.spans[0] = OrdinalRange{3, 3};
  int count = 0;
  box.ForEach(grid, [&](uint64_t num, const ChunkCoords&) {
    EXPECT_EQ(num, 3u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

// ------------------------------ ChunkingScheme ------------------------------

// ChunkingScheme keeps a pointer to the schema, so the fixture gives the
// schema a stable heap location before building the scheme.
class ChunkingSchemeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<StarSchema>(std::move(s).value());
    ChunkingOptions opts;
    opts.range_fraction = 0.1;
    auto scheme = ChunkingScheme::Build(schema_.get(), opts, 500000);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<ChunkingScheme>(std::move(scheme).value());
  }

  std::unique_ptr<StarSchema> schema_;
  std::unique_ptr<ChunkingScheme> scheme_;
};

TEST_F(ChunkingSchemeTest, GroupByIdRoundTrips) {
  const uint32_t n = scheme_->NumGroupByIds();
  EXPECT_EQ(n, 144u);
  std::set<uint32_t> ids;
  for (uint32_t id = 0; id < n; ++id) {
    const GroupBySpec spec = scheme_->SpecOfId(id);
    EXPECT_EQ(scheme_->GroupById(spec), id);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), n);
}

TEST_F(ChunkingSchemeTest, BaseSpecIsFinest) {
  const GroupBySpec base = scheme_->BaseSpec();
  EXPECT_EQ(base.levels[0], 3);
  EXPECT_EQ(base.levels[1], 2);
  EXPECT_EQ(base.levels[2], 3);
  EXPECT_EQ(base.levels[3], 2);
  for (uint32_t id = 0; id < scheme_->NumGroupByIds(); ++id) {
    EXPECT_TRUE(scheme_->SpecOfId(id).CoarserOrEqual(base));
  }
}

TEST_F(ChunkingSchemeTest, GridCachesAndCounts) {
  const GroupBySpec base = scheme_->BaseSpec();
  const ChunkGrid& g1 = scheme_->GridFor(base);
  const ChunkGrid& g2 = scheme_->GridFor(base);
  EXPECT_EQ(&g1, &g2);  // cached
  // The grid's chunk count is the product of per-dimension range counts.
  // With fraction 0.1 the desired count is 10 ranges per dimension, but
  // hierarchy alignment may fragment ranges (Figure 6: "the desired chunk
  // range may not match the actual chunk range"), so the actual count is at
  // least the desired one.
  uint64_t product = 1;
  for (uint32_t d = 0; d < 4; ++d) {
    const uint32_t n =
        scheme_->dim_chunking(d).NumRanges(base.levels[d]);
    EXPECT_GE(n, 10u);
    EXPECT_EQ(g1.NumRangesOnDim(d), n);
    product *= n;
  }
  EXPECT_EQ(g1.num_chunks(), product);
}

TEST_F(ChunkingSchemeTest, BoxForSelectionCoversSelection) {
  GroupBySpec spec{{2, 1, 0, 2}, 4};  // D0@L2, D1@L1, D2@ALL, D3@L2
  std::array<OrdinalRange, storage::kMaxDims> sel{};
  sel[0] = OrdinalRange{7, 22};   // D0 level2 has 50 values
  sel[1] = OrdinalRange{3, 3};    // D1 level1 has 25 values
  sel[2] = OrdinalRange{0, 0};    // ALL
  sel[3] = OrdinalRange{10, 49};  // D3 level2 has 50 values
  const ChunkBox box = scheme_->BoxForSelection(spec, sel);
  const ChunkGrid& grid = scheme_->GridFor(spec);
  // Every selected cell's chunk is inside the box.
  for (uint32_t v0 = sel[0].begin; v0 <= sel[0].end; ++v0) {
    const uint32_t r0 = scheme_->dim_chunking(0).RangeOfValue(2, v0);
    EXPECT_TRUE(box.spans[0].Contains(r0));
  }
  // And each box chunk intersects the selection on every dimension.
  box.ForEach(grid, [&](uint64_t num, const ChunkCoords&) {
    auto extent = scheme_->ChunkExtent(spec, num);
    for (uint32_t d = 0; d < 4; ++d) {
      EXPECT_LE(extent[d].begin, sel[d].end);
      EXPECT_GE(extent[d].end, sel[d].begin);
    }
  });
}

TEST_F(ChunkingSchemeTest, ChunkExtentTilesTheGrid) {
  GroupBySpec spec{{1, 1, 1, 1}, 4};
  const ChunkGrid& grid = scheme_->GridFor(spec);
  // Sum of extent volumes = product of level cardinalities.
  uint64_t cells = 0;
  for (uint64_t n = 0; n < grid.num_chunks(); ++n) {
    auto extent = scheme_->ChunkExtent(spec, n);
    uint64_t vol = 1;
    for (uint32_t d = 0; d < 4; ++d) vol *= extent[d].size();
    cells += vol;
  }
  EXPECT_EQ(cells, 25ull * 25 * 5 * 10);
}

TEST_F(ChunkingSchemeTest, SourceBoxClosureProperty) {
  // Figure 3's closure: a chunk of (Time) is computable from the chunks of
  // (Product, Time) its box names. Verify: base cells covered by the target
  // chunk == union of base cells covered by its source chunks.
  const GroupBySpec coarse{{1, 0, 2, 1}, 4};
  const GroupBySpec fine = scheme_->BaseSpec();
  const ChunkGrid& cgrid = scheme_->GridFor(coarse);
  for (uint64_t n = 0; n < cgrid.num_chunks(); ++n) {
    auto box = scheme_->SourceBox(coarse, n, fine);
    ASSERT_TRUE(box.ok());
    // Base extent of the target chunk on each dimension.
    auto target_extent = scheme_->ChunkExtent(coarse, n);
    for (uint32_t d = 0; d < 4; ++d) {
      const auto& h = schema_->dimension(d).hierarchy;
      const OrdinalRange base_target =
          h.BaseRangeOf(coarse.levels[d], target_extent[d]);
      // Union of source chunk extents on dimension d.
      const auto& dc = scheme_->dim_chunking(d);
      const OrdinalRange first =
          dc.Range(fine.levels[d], box->spans[d].begin);
      const OrdinalRange last = dc.Range(fine.levels[d], box->spans[d].end);
      const OrdinalRange base_src =
          h.BaseRangeOf(fine.levels[d], OrdinalRange{first.begin, last.end});
      EXPECT_EQ(base_src, base_target)
          << "chunk " << n << " dim " << d;
    }
  }
}

TEST_F(ChunkingSchemeTest, SourceBoxIdentityWhenSameSpec) {
  const GroupBySpec spec{{2, 1, 1, 1}, 4};
  auto box = scheme_->SourceBox(spec, 5, spec);
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(box->NumChunks(), 1u);
  const ChunkGrid& grid = scheme_->GridFor(spec);
  box->ForEach(grid, [&](uint64_t num, const ChunkCoords&) {
    EXPECT_EQ(num, 5u);
  });
}

TEST_F(ChunkingSchemeTest, SourceBoxRejectsFinerTarget) {
  const GroupBySpec coarse{{1, 1, 1, 1}, 4};
  const GroupBySpec fine = scheme_->BaseSpec();
  EXPECT_FALSE(scheme_->SourceBox(fine, 0, coarse).ok());
  EXPECT_EQ(scheme_->SourceBox(coarse, 1 << 20, fine).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(ChunkingSchemeTest, ChunkOfCellConsistentWithExtent) {
  const GroupBySpec spec{{2, 2, 2, 1}, 4};
  ChunkCoords cell{};
  cell[0] = 17;
  cell[1] = 42;
  cell[2] = 8;
  cell[3] = 9;
  const uint64_t num = scheme_->ChunkOfCell(spec, cell);
  auto extent = scheme_->ChunkExtent(spec, num);
  for (uint32_t d = 0; d < 4; ++d) {
    EXPECT_TRUE(extent[d].Contains(cell[d]));
  }
}

TEST_F(ChunkingSchemeTest, BenefitScalesWithAggregation) {
  // Higher aggregation -> fewer chunks -> larger per-chunk benefit
  // (Section 5.4: benefit = |base table| / #chunks).
  const GroupBySpec base = scheme_->BaseSpec();
  const GroupBySpec coarse{{1, 0, 0, 0}, 4};
  EXPECT_GT(scheme_->ChunkBenefit(coarse), scheme_->ChunkBenefit(base));
  const ChunkGrid& grid = scheme_->GridFor(base);
  EXPECT_DOUBLE_EQ(scheme_->ChunkBenefit(base),
                   500000.0 / grid.num_chunks());
}

TEST(ChunkingSchemeBuildTest, ValidatesOptions) {
  auto s = BuildPaperSchema();
  ASSERT_TRUE(s.ok());
  StarSchema schema = std::move(s).value();
  ChunkingOptions opts;
  opts.range_fraction = 0.0;
  EXPECT_FALSE(ChunkingScheme::Build(&schema, opts, 1000).ok());
  opts.range_fraction = 1.5;
  EXPECT_FALSE(ChunkingScheme::Build(&schema, opts, 1000).ok());
  opts.range_fraction = 0.5;
  opts.explicit_sizes.resize(2);  // wrong dimension count
  EXPECT_FALSE(ChunkingScheme::Build(&schema, opts, 1000).ok());
  EXPECT_FALSE(ChunkingScheme::Build(nullptr, ChunkingOptions{}, 1000).ok());
}

TEST(ChunkingSchemeBuildTest, ExplicitSizesHonored) {
  auto s = BuildPaperSchema();
  ASSERT_TRUE(s.ok());
  StarSchema schema = std::move(s).value();
  ChunkingOptions opts;
  opts.explicit_sizes = {
      ChunkRangeSizes{{5, 10, 20}},
      ChunkRangeSizes{{5, 10}},
      ChunkRangeSizes{{1, 5, 10}},
      ChunkRangeSizes{{2, 10}},
  };
  auto scheme = ChunkingScheme::Build(&schema, opts, 1000);
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme->dim_chunking(0).NumRanges(1), 5u);  // 25 values / size 5
  EXPECT_EQ(scheme->dim_chunking(2).NumRanges(1), 5u);  // 5 values / size 1
  // D3: 5 level-1 ranges; each maps to 10 level-2 values, divided by size
  // 10 -> one range apiece.
  EXPECT_EQ(scheme->dim_chunking(3).NumRanges(2), 5u);
}

}  // namespace
}  // namespace chunkcache::chunks
