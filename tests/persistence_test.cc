// Crash-safe persistent cache tests (DESIGN.md §14), three layers deep:
//
//  1. CachePersistence unit tests on raw temp directories — WAL round
//     trip, torn-tail truncation at EVERY byte offset of the final
//     record, snapshot rotation/GC, and skip-and-quarantine of corrupt
//     snapshot records.
//  2. End-to-end warm restart through ChunkCacheManager — a restarted
//     manager must answer bit-identically to a cold one (compression on
//     and off) while doing strictly less backend work.
//  3. Crash-point fuzz — arm each persistence fault site in turn, kill
//     the process mid-traffic (SimulateCrash), restart, and require a
//     recovered cache that still answers bit-identically. CrashStorm is
//     the tier2 variant: many randomized kill/restart cycles reusing one
//     directory.

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "common/fault_injector.h"
#include "core/chunk_cache_manager.h"
#include "gtest/gtest.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/cache_persist.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace chunkcache {
namespace {

namespace fs = std::filesystem;

using backend::ResultRow;
using backend::StarJoinQuery;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;
using storage::CachePersistence;
using storage::PersistedChunk;
using storage::PersistOptions;
using storage::RecoveryStats;
using storage::Tuple;

// ------------------------------ helpers -------------------------------------

/// Unique scratch directory, recursively removed on scope exit.
struct ScratchDir {
  ScratchDir() {
    char tmpl[] = "/tmp/chunkcache_persist_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// The only file in `dir` whose name starts with `prefix` ("wal-",
/// "snapshot-"); fails the test if there is not exactly one.
std::string OnlyFileWithPrefix(const std::string& dir,
                               const std::string& prefix) {
  std::string found;
  int n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind(prefix, 0) == 0) {
      found = e.path().string();
      ++n;
    }
  }
  EXPECT_EQ(n, 1) << prefix << "* in " << dir;
  return found;
}

struct Frame {
  size_t offset;  ///< File offset of the 8-byte record header.
  uint32_t len;   ///< Bytes of type|payload that follow the header.
  uint8_t type;
};

/// Walks the record stream of a WAL/snapshot image using the public frame
/// layout (u32 crc | u32 len | u8 type | payload).
std::vector<Frame> ParseFrames(const std::vector<uint8_t>& bytes) {
  std::vector<Frame> out;
  size_t pos = CachePersistence::kFileHeaderBytes;
  while (pos + CachePersistence::kRecordHeaderBytes <= bytes.size()) {
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos + 4, sizeof(len));
    if (pos + CachePersistence::kRecordHeaderBytes + len > bytes.size()) break;
    out.push_back(Frame{pos, len,
                        bytes[pos + CachePersistence::kRecordHeaderBytes]});
    pos += CachePersistence::kRecordHeaderBytes + len;
  }
  return out;
}

std::unique_ptr<CachePersistence> OpenOrDie(const std::string& dir,
                                            uint64_t fsync_every = 1) {
  PersistOptions opts;
  opts.dir = dir;
  opts.wal_fsync_every = fsync_every;
  auto r = CachePersistence::Open(opts);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

PersistedChunk MakeChunk(uint32_t gb, uint64_t num, uint8_t fill) {
  PersistedChunk c;
  c.group_by_id = gb;
  c.chunk_num = num;
  c.filter_hash = 0x9E3779B97F4A7C15ull * (num + 1);
  c.benefit = 0.5 + static_cast<double>(fill);
  c.raw_bytes = 64 + fill;
  c.rows = 4 + gb;
  c.blob.assign(8 + fill % 5, fill);
  return c;
}

bool SameChunk(const PersistedChunk& a, const PersistedChunk& b) {
  return a.group_by_id == b.group_by_id && a.chunk_num == b.chunk_num &&
         a.filter_hash == b.filter_hash && a.benefit == b.benefit &&
         a.raw_bytes == b.raw_bytes && a.rows == b.rows && a.blob == b.blob;
}

int StormIters(int fallback) {
  const char* s = std::getenv("CHUNKCACHE_STORM_ITERS");
  if (s == nullptr) return fallback;
  const int n = std::atoi(s);
  return n > 0 ? n : fallback;
}

// ----------------------------- WAL round trip -------------------------------

TEST(PersistWal, AdmitEvictBenefitRoundTrip) {
  ScratchDir dir;
  const PersistedChunk a = MakeChunk(1, 10, 3);
  const PersistedChunk b = MakeChunk(1, 11, 4);
  const PersistedChunk c = MakeChunk(2, 12, 5);
  {
    auto p = OpenOrDie(dir.path);
    p->LogAdmit(a);
    p->LogAdmit(b);
    p->LogAdmit(c);
    p->LogEvict(b.group_by_id, b.chunk_num, b.filter_hash);
    p->LogBenefit(2, 0.625);
    EXPECT_EQ(p->wal_records_since_snapshot(), 5u);
  }
  auto p = OpenOrDie(dir.path);
  RecoveryStats rec = p->TakeRecovery();
  EXPECT_EQ(rec.wal_records, 5u);
  EXPECT_EQ(rec.wal_truncated_bytes, 0u);
  EXPECT_EQ(rec.quarantined, 0u);
  ASSERT_EQ(rec.entries.size(), 2u);
  EXPECT_TRUE(SameChunk(rec.entries[0], a));
  EXPECT_TRUE(SameChunk(rec.entries[1], c));
  ASSERT_EQ(rec.benefit_ewma.size(), 1u);
  EXPECT_EQ(rec.benefit_ewma[0].first, 2u);
  EXPECT_DOUBLE_EQ(rec.benefit_ewma[0].second, 0.625);
}

TEST(PersistWal, ReAdmitSameKeyUpserts) {
  ScratchDir dir;
  PersistedChunk a = MakeChunk(3, 7, 1);
  {
    auto p = OpenOrDie(dir.path);
    p->LogAdmit(a);
    a.benefit = 9.0;
    a.blob.assign(6, 0xEE);
    p->LogAdmit(a);  // replacement: replay must keep the newer payload
  }
  auto p = OpenOrDie(dir.path);
  RecoveryStats rec = p->TakeRecovery();
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_TRUE(SameChunk(rec.entries[0], a));
}

TEST(PersistWal, CrashDropsSubsequentAppends) {
  ScratchDir dir;
  {
    auto p = OpenOrDie(dir.path);
    p->LogAdmit(MakeChunk(1, 1, 1));
    p->SimulateCrash();
    p->LogAdmit(MakeChunk(1, 2, 2));  // after the "kill": must not land
  }
  auto p = OpenOrDie(dir.path);
  RecoveryStats rec = p->TakeRecovery();
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_EQ(rec.entries[0].chunk_num, 1u);
}

// Torn tail: truncate the WAL at every byte offset inside the final
// record. Every cut must recover cleanly to exactly the prefix records,
// counting the torn bytes.
TEST(PersistWal, TornTailTruncatedAtEveryByteOffset) {
  ScratchDir master;
  std::vector<PersistedChunk> chunks;
  for (uint8_t i = 0; i < 4; ++i) chunks.push_back(MakeChunk(1, i, i));
  {
    auto p = OpenOrDie(master.path);
    for (const auto& c : chunks) p->LogAdmit(c);
  }
  const std::string wal = OnlyFileWithPrefix(master.path, "wal-");
  const std::vector<uint8_t> image = ReadFileBytes(wal);
  const std::vector<Frame> frames = ParseFrames(image);
  ASSERT_EQ(frames.size(), 4u);
  const size_t last_start = frames.back().offset;
  ASSERT_EQ(last_start + CachePersistence::kRecordHeaderBytes +
                frames.back().len,
            image.size());

  for (size_t cut = last_start; cut < image.size(); ++cut) {
    ScratchDir torn;
    std::vector<uint8_t> img(image.begin(), image.begin() + cut);
    WriteFileBytes(torn.path + "/" + fs::path(wal).filename().string(), img);
    auto p = OpenOrDie(torn.path);
    RecoveryStats rec = p->TakeRecovery();
    ASSERT_EQ(rec.entries.size(), 3u) << "cut at byte " << cut;
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(SameChunk(rec.entries[i], chunks[i])) << "cut " << cut;
    }
    EXPECT_EQ(rec.wal_records, 3u) << "cut " << cut;
    EXPECT_EQ(rec.wal_truncated_bytes, cut - last_start) << "cut " << cut;
    EXPECT_EQ(rec.quarantined, 0u);
    // The torn tail was truncated away: appends to the recovered WAL line
    // up on a record boundary again.
    p->LogAdmit(chunks[3]);
    p.reset();
    auto p2 = OpenOrDie(torn.path);
    RecoveryStats rec2 = p2->TakeRecovery();
    ASSERT_EQ(rec2.entries.size(), 4u) << "cut " << cut;
    EXPECT_TRUE(SameChunk(rec2.entries[3], chunks[3]));
  }
}

// A corrupted (bit-flipped) record in the middle of the WAL ends replay at
// that point: the suffix cannot be trusted once framing is broken.
TEST(PersistWal, CorruptMiddleRecordStopsReplayAtTear) {
  ScratchDir dir;
  std::vector<PersistedChunk> chunks;
  for (uint8_t i = 0; i < 3; ++i) chunks.push_back(MakeChunk(2, i, i));
  {
    auto p = OpenOrDie(dir.path);
    for (const auto& c : chunks) p->LogAdmit(c);
  }
  const std::string wal = OnlyFileWithPrefix(dir.path, "wal-");
  std::vector<uint8_t> image = ReadFileBytes(wal);
  const std::vector<Frame> frames = ParseFrames(image);
  ASSERT_EQ(frames.size(), 3u);
  // Flip one payload byte of the middle record.
  image[frames[1].offset + CachePersistence::kRecordHeaderBytes + 9] ^= 0x40;
  WriteFileBytes(wal, image);

  auto p = OpenOrDie(dir.path);
  RecoveryStats rec = p->TakeRecovery();
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_TRUE(SameChunk(rec.entries[0], chunks[0]));
  EXPECT_GT(rec.wal_truncated_bytes, 0u);
}

// ------------------------------- snapshots ----------------------------------

TEST(PersistSnapshot, RotateRecoverAndGc) {
  ScratchDir dir;
  const PersistedChunk a = MakeChunk(1, 100, 1);
  const PersistedChunk b = MakeChunk(1, 101, 2);
  const PersistedChunk c = MakeChunk(2, 102, 3);
  {
    auto p = OpenOrDie(dir.path);
    p->LogAdmit(a);
    p->LogAdmit(b);
    Status s = p->WriteSnapshot(
        [&](std::vector<PersistedChunk>* out) {
          out->push_back(a);
          out->push_back(b);
        },
        [&](std::vector<std::pair<uint32_t, double>>* out) {
          out->emplace_back(1, 0.75);
        });
    ASSERT_TRUE(s.ok()) << s.message();
    EXPECT_EQ(p->wal_records_since_snapshot(), 0u);
    p->LogAdmit(c);  // lands in the rotated WAL, replayed over the snapshot
  }
  // A fresh directory opens at generation 1; the snapshot bumped it to 2
  // and garbage collected the generation-1 WAL once durable.
  EXPECT_FALSE(fs::exists(dir.path + "/wal-1"));
  EXPECT_TRUE(fs::exists(dir.path + "/snapshot-2"));
  EXPECT_TRUE(fs::exists(dir.path + "/wal-2"));

  auto p = OpenOrDie(dir.path);
  RecoveryStats rec = p->TakeRecovery();
  EXPECT_EQ(rec.generation, 2u);
  EXPECT_EQ(rec.snapshot_entries, 2u);
  EXPECT_EQ(rec.wal_records, 1u);
  ASSERT_EQ(rec.entries.size(), 3u);
  EXPECT_TRUE(SameChunk(rec.entries[0], a));
  EXPECT_TRUE(SameChunk(rec.entries[1], b));
  EXPECT_TRUE(SameChunk(rec.entries[2], c));
  ASSERT_EQ(rec.benefit_ewma.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.benefit_ewma[0].second, 0.75);
}

// Corrupt snapshot record: skipped and quarantined; neighbors survive.
TEST(PersistSnapshot, CorruptRecordQuarantinedNeighborsSurvive) {
  ScratchDir dir;
  std::vector<PersistedChunk> chunks;
  for (uint8_t i = 0; i < 3; ++i) chunks.push_back(MakeChunk(4, i, i));
  {
    auto p = OpenOrDie(dir.path);
    Status s = p->WriteSnapshot(
        [&](std::vector<PersistedChunk>* out) { *out = chunks; },
        [](std::vector<std::pair<uint32_t, double>>*) {});
    ASSERT_TRUE(s.ok()) << s.message();
    p->SimulateCrash();  // keep the shutdown path from appending anything
  }
  const std::string snap = OnlyFileWithPrefix(dir.path, "snapshot-");
  std::vector<uint8_t> image = ReadFileBytes(snap);
  const std::vector<Frame> frames = ParseFrames(image);
  // 3 admits + footer.
  ASSERT_EQ(frames.size(), 4u);
  ASSERT_EQ(frames[1].type, CachePersistence::kAdmit);
  image[frames[1].offset + CachePersistence::kRecordHeaderBytes + 6] ^= 0x01;
  WriteFileBytes(snap, image);

  auto p = OpenOrDie(dir.path);
  RecoveryStats rec = p->TakeRecovery();
  EXPECT_EQ(rec.quarantined, 1u);
  ASSERT_EQ(rec.entries.size(), 2u);
  EXPECT_TRUE(SameChunk(rec.entries[0], chunks[0]));
  EXPECT_TRUE(SameChunk(rec.entries[1], chunks[2]));
}

// An unreadable snapshot (bad magic) falls back to cold, never an error.
TEST(PersistSnapshot, BadMagicFallsBackCold) {
  ScratchDir dir;
  {
    auto p = OpenOrDie(dir.path);
    Status s = p->WriteSnapshot(
        [&](std::vector<PersistedChunk>* out) {
          out->push_back(MakeChunk(1, 1, 1));
        },
        [](std::vector<std::pair<uint32_t, double>>*) {});
    ASSERT_TRUE(s.ok());
    p->SimulateCrash();
  }
  const std::string snap = OnlyFileWithPrefix(dir.path, "snapshot-");
  std::vector<uint8_t> image = ReadFileBytes(snap);
  image[0] ^= 0xFF;
  WriteFileBytes(snap, image);

  auto p = OpenOrDie(dir.path);
  RecoveryStats rec = p->TakeRecovery();
  EXPECT_EQ(rec.snapshot_entries, 0u);
  EXPECT_TRUE(rec.entries.empty());
}

// A stray .tmp (crash between shadow write and rename) is ignored and
// cleaned up; the previous generation stays authoritative.
TEST(PersistSnapshot, StrayTmpIgnoredAndUnlinked) {
  ScratchDir dir;
  const PersistedChunk a = MakeChunk(9, 5, 2);
  {
    auto p = OpenOrDie(dir.path);
    p->LogAdmit(a);
  }
  WriteFileBytes(dir.path + "/snapshot-7.tmp", {1, 2, 3, 4});
  auto p = OpenOrDie(dir.path);
  RecoveryStats rec = p->TakeRecovery();
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_TRUE(SameChunk(rec.entries[0], a));
  EXPECT_FALSE(fs::exists(dir.path + "/snapshot-7.tmp"));
}

// --------------------------- end-to-end fixture -----------------------------

bool RowsEqual(const std::vector<ResultRow>& a,
               const std::vector<ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].coords != b[i].coords || a[i].sum != b[i].sum ||
        a[i].count != b[i].count || a[i].min_v != b[i].min_v ||
        a[i].max_v != b[i].max_v) {
      return false;
    }
  }
  return true;
}

class PersistenceFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 16000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    chunks::ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = chunks::ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ =
        std::make_unique<chunks::ChunkingScheme>(std::move(scheme).value());
    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 47;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);
    pool_ = std::make_unique<storage::BufferPool>(&disk_, 4096);
    auto file =
        backend::ChunkedFile::BulkLoad(pool_.get(), scheme_.get(), tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(pool_.get(),
                                                       file_.get(),
                                                       scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  std::vector<StarJoinQuery> MakeQueries(int n, uint64_t seed) {
    workload::WorkloadOptions wopts;
    wopts.seed = seed;
    workload::QueryGenerator gen(schema_.get(), wopts);
    std::vector<StarJoinQuery> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i) out.push_back(gen.Next());
    return out;
  }

  /// Reference answers from a persistence-free manager (cache warmth never
  /// changes answers, so this is THE ground truth for every restart mode).
  std::vector<std::vector<ResultRow>> ReferenceRows(
      const std::vector<StarJoinQuery>& queries, bool compression = false) {
    ChunkManagerOptions opts;
    opts.enable_compression = compression;
    ChunkCacheManager mgr(engine_.get(), opts);
    std::vector<std::vector<ResultRow>> rows;
    for (const auto& q : queries) {
      QueryStats st;
      auto r = mgr.Execute(q, &st);
      EXPECT_TRUE(r.ok()) << r.status().message();
      rows.push_back(std::move(r).value());
    }
    return rows;
  }

  ChunkManagerOptions PersistOpts(const std::string& dir,
                                  bool compression = false) {
    ChunkManagerOptions opts;
    opts.persist_dir = dir;
    opts.persist_snapshot_every = 64;
    opts.persist_wal_fsync_every = 8;
    opts.enable_compression = compression;
    return opts;
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<chunks::ChunkingScheme> scheme_;
  std::vector<Tuple> tuples_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

void RunWarmRestart(backend::BackendEngine* engine,
                    const std::vector<StarJoinQuery>& queries,
                    const std::vector<std::vector<ResultRow>>& reference,
                    ChunkManagerOptions opts) {
  uint64_t cold_backend = 0;
  {
    ChunkCacheManager cold(engine, opts);
    EXPECT_EQ(cold.StatsSnapshot().persist_recovered_entries, 0u);
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats st;
      auto r = cold.Execute(queries[i], &st);
      ASSERT_TRUE(r.ok()) << r.status().message();
      EXPECT_TRUE(RowsEqual(*r, reference[i])) << "cold query " << i;
      cold_backend += st.chunks_from_backend;
    }
  }  // clean shutdown: final snapshot written

  ChunkCacheManager warm(engine, opts);
  const auto& rec = warm.recovery_stats();
  EXPECT_GT(rec.snapshot_entries + rec.wal_records, 0u);
  EXPECT_EQ(rec.quarantined, 0u);
  const auto warm_stats = warm.StatsSnapshot();
  EXPECT_GT(warm_stats.persist_recovered_entries, 0u);
  EXPECT_EQ(warm_stats.persist_quarantined, 0u);

  uint64_t warm_backend = 0, warm_hits = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryStats st;
    auto r = warm.Execute(queries[i], &st);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_TRUE(RowsEqual(*r, reference[i])) << "warm query " << i;
    warm_backend += st.chunks_from_backend;
    warm_hits += st.chunks_from_cache;
  }
  // The restart actually warmed the cache: strictly fewer backend chunk
  // computations than the cold pass over the identical query sequence.
  EXPECT_LT(warm_backend, cold_backend);
  EXPECT_GT(warm_hits, 0u);
}

TEST_F(PersistenceFixture, WarmRestartBitIdenticalRaw) {
  const auto queries = MakeQueries(30, 23);
  const auto reference = ReferenceRows(queries);
  ScratchDir dir;
  RunWarmRestart(engine_.get(), queries, reference,
                 PersistOpts(dir.path, /*compression=*/false));
}

TEST_F(PersistenceFixture, WarmRestartBitIdenticalCompressed) {
  const auto queries = MakeQueries(30, 23);
  const auto reference = ReferenceRows(queries, /*compression=*/true);
  ScratchDir dir;
  RunWarmRestart(engine_.get(), queries, reference,
                 PersistOpts(dir.path, /*compression=*/true));
}

// A compressed-tier run can be recovered by a raw-tier manager and vice
// versa: the durable blob is the self-contained codec format either way.
TEST_F(PersistenceFixture, CrossTierRestartBitIdentical) {
  const auto queries = MakeQueries(20, 31);
  const auto reference = ReferenceRows(queries);
  ScratchDir dir;
  {
    ChunkCacheManager mgr(engine_.get(),
                          PersistOpts(dir.path, /*compression=*/true));
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats st;
      auto r = mgr.Execute(queries[i], &st);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(RowsEqual(*r, reference[i]));
    }
  }
  ChunkCacheManager warm(engine_.get(),
                         PersistOpts(dir.path, /*compression=*/false));
  EXPECT_GT(warm.StatsSnapshot().persist_recovered_entries, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryStats st;
    auto r = warm.Execute(queries[i], &st);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(RowsEqual(*r, reference[i])) << "query " << i;
  }
}

// ----------------------------- crash-point fuzz -----------------------------

/// One kill/restart cycle: run traffic with `site` armed to fault the
/// k-th persistence operation, kill the process at the end (SimulateCrash
/// so the shutdown snapshot is suppressed, exactly like a SIGKILL), then
/// restart on the same directory and require bit-identical answers.
void CrashCycle(backend::BackendEngine* engine,
                const std::vector<StarJoinQuery>& queries,
                const std::vector<std::vector<ResultRow>>& reference,
                const std::string& dir, FaultSite site, uint64_t skip) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Seed(0xC0FFEE00 + skip);
  fi.ResetCounters();
  {
    ChunkManagerOptions opts;
    opts.persist_dir = dir;
    opts.persist_snapshot_every = 16;  // exercise the snapshot path often
    ChunkCacheManager mgr(engine, opts);
    fi.Arm(site, /*probability=*/1.0, StatusCode::kIoError,
           /*max_faults=*/1, /*skip_ops=*/skip);
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats st;
      auto r = mgr.Execute(queries[i], &st);
      // Persistence is best-effort on the write side: faults there must
      // never surface into query execution.
      ASSERT_TRUE(r.ok()) << FaultSiteName(site) << " skip " << skip;
      EXPECT_TRUE(RowsEqual(*r, reference[i]));
    }
    fi.DisarmAll();
    ASSERT_NE(mgr.persistence(), nullptr);
    mgr.persistence()->SimulateCrash();
  }  // "killed": destructor writes nothing

  ChunkManagerOptions opts;
  opts.persist_dir = dir;
  ChunkCacheManager warm(engine, opts);
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryStats st;
    auto r = warm.Execute(queries[i], &st);
    ASSERT_TRUE(r.ok()) << FaultSiteName(site) << " skip " << skip;
    EXPECT_TRUE(RowsEqual(*r, reference[i]))
        << FaultSiteName(site) << " skip " << skip << " query " << i;
  }
}

TEST_F(PersistenceFixture, CrashPointFuzzEveryFaultSite) {
  const auto queries = MakeQueries(12, 29);
  const auto reference = ReferenceRows(queries);
  const FaultSite sites[] = {FaultSite::kWalAppend, FaultSite::kWalFsync,
                             FaultSite::kSnapshotWrite,
                             FaultSite::kSnapshotRename};
  for (FaultSite site : sites) {
    for (uint64_t skip : {0ull, 2ull, 9ull}) {
      ScratchDir dir;
      CrashCycle(engine_.get(), queries, reference, dir.path, site, skip);
    }
  }
}

// Recovery-side faults: every snapshot/WAL read can fail and construction
// must still succeed (worst case a cold cache) with correct answers.
TEST_F(PersistenceFixture, RecoveryReadFaultFallsBackGracefully) {
  const auto queries = MakeQueries(12, 37);
  const auto reference = ReferenceRows(queries);
  ScratchDir dir;
  {
    ChunkManagerOptions opts;
    opts.persist_dir = dir.path;
    ChunkCacheManager mgr(engine_.get(), opts);
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats st;
      auto r = mgr.Execute(queries[i], &st);
      ASSERT_TRUE(r.ok());
    }
  }
  FaultInjector& fi = FaultInjector::Global();
  for (uint64_t skip : {0ull, 1ull}) {
    fi.Seed(0xDEAD0000 + skip);
    fi.ResetCounters();
    fi.Arm(FaultSite::kRecoveryRead, /*probability=*/1.0,
           StatusCode::kIoError, FaultInjector::kUnlimited, skip);
    ChunkManagerOptions opts;
    opts.persist_dir = dir.path;
    opts.persist_snapshot_on_shutdown = false;  // keep the dir warm
    ChunkCacheManager warm(engine_.get(), opts);
    fi.DisarmAll();
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats st;
      auto r = warm.Execute(queries[i], &st);
      ASSERT_TRUE(r.ok()) << "skip " << skip;
      EXPECT_TRUE(RowsEqual(*r, reference[i])) << "skip " << skip;
    }
  }
}

// Concurrent traffic while the WAL sink and explicit snapshots run: the
// event sink fires outside shard locks from many workers while the main
// thread forces full snapshot rotations (this is the interleaving TSAN
// needs to see). The restarted cache must still answer bit-identically.
TEST_F(PersistenceFixture, ConcurrentTrafficWithSnapshots) {
  const auto reference_queries = MakeQueries(10, 53);
  const auto reference = ReferenceRows(reference_queries);
  ScratchDir dir;
  {
    ChunkManagerOptions opts = PersistOpts(dir.path);
    opts.num_workers = 4;
    opts.cache_shards = 4;
    opts.persist_snapshot_every = 0;  // only the explicit + shutdown ones
    ChunkCacheManager mgr(engine_.get(), opts);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([this, &mgr, t] {
        workload::WorkloadOptions wopts;
        wopts.seed = 100 + t;
        workload::QueryGenerator gen(schema_.get(), wopts);
        for (int i = 0; i < 15; ++i) {
          QueryStats st;
          auto r = mgr.Execute(gen.Next(), &st);
          EXPECT_TRUE(r.ok());
        }
      });
    }
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(mgr.PersistSnapshot().ok());
    }
    for (auto& th : threads) th.join();
  }
  ChunkCacheManager warm(engine_.get(), PersistOpts(dir.path));
  EXPECT_GT(warm.StatsSnapshot().persist_recovered_entries, 0u);
  for (size_t i = 0; i < reference_queries.size(); ++i) {
    QueryStats st;
    auto r = warm.Execute(reference_queries[i], &st);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(RowsEqual(*r, reference[i])) << "query " << i;
  }
}

// ------------------------------ tier2 storm ---------------------------------

/// Randomized kill/restart storm reusing ONE persistence directory: every
/// cycle arms all five persistence sites at low probability, runs traffic,
/// flips a coin between clean shutdown and SIGKILL, then the next cycle
/// recovers on top of whatever survived. Answers must stay bit-identical
/// throughout. Iterations scale with CHUNKCACHE_STORM_ITERS (tier2 CI
/// sets 10; the default smoke pass runs 2).
TEST_F(PersistenceFixture, CrashStormKillRestartCycles) {
  const int iters = StormIters(2);
  const auto queries = MakeQueries(10, 41);
  const auto reference = ReferenceRows(queries);
  const FaultSite sites[] = {FaultSite::kWalAppend, FaultSite::kWalFsync,
                             FaultSite::kSnapshotWrite,
                             FaultSite::kSnapshotRename,
                             FaultSite::kRecoveryRead};
  ScratchDir dir;
  std::mt19937_64 rng(0x57012);
  FaultInjector& fi = FaultInjector::Global();
  for (int cycle = 0; cycle < iters; ++cycle) {
    fi.Seed(rng());
    fi.ResetCounters();
    // Recovery runs under fire too (kRecoveryRead armed at 5%).
    for (FaultSite s : sites) {
      fi.Arm(s, /*probability=*/0.05, StatusCode::kIoError);
    }
    ChunkManagerOptions opts;
    opts.persist_dir = dir.path;
    opts.persist_snapshot_every = 16;
    ChunkCacheManager mgr(engine_.get(), opts);
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats st;
      auto r = mgr.Execute(queries[i], &st);
      ASSERT_TRUE(r.ok()) << "cycle " << cycle;
      EXPECT_TRUE(RowsEqual(*r, reference[i]))
          << "cycle " << cycle << " query " << i;
    }
    fi.DisarmAll();
    if (rng() & 1) mgr.persistence()->SimulateCrash();
  }
  // Final verification pass, faults off, after the last restart.
  ChunkManagerOptions opts;
  opts.persist_dir = dir.path;
  ChunkCacheManager mgr(engine_.get(), opts);
  EXPECT_EQ(mgr.recovery_stats().quarantined, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryStats st;
    auto r = mgr.Execute(queries[i], &st);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(RowsEqual(*r, reference[i])) << "final pass query " << i;
  }
}

}  // namespace
}  // namespace chunkcache
