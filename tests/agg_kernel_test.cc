#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/agg_file.h"
#include "backend/aggregator.h"
#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "backend/star_join_query.h"
#include "chunks/chunking_scheme.h"
#include "common/cost_model.h"
#include "common/random.h"
#include "common/simd.h"
#include "schema/star_schema.h"
#include "schema/synthetic.h"
#include "storage/agg_columns.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fact_file.h"

namespace chunkcache::backend {
namespace {

using chunks::ChunkCoords;
using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using chunks::GroupBySpec;
using schema::OrdinalRange;
using storage::AggColumns;
using storage::AggTuple;
using storage::BufferPool;
using storage::InMemoryDiskManager;
using storage::Tuple;
using storage::TupleColumns;

// ------------------------------- AggColumns ---------------------------------

std::vector<AggTuple> SampleRows() {
  std::vector<AggTuple> rows(4);
  rows[0].coords = {5, 1, 0};
  rows[1].coords = {2, 9, 3};
  rows[2].coords = {2, 3, 1};
  rows[3].coords = {0, 0, 7};
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].sum = 1.5 * static_cast<double>(i) - 2.0;
    rows[i].count = i + 1;
    rows[i].min_v = -static_cast<double>(i);
    rows[i].max_v = static_cast<double>(i) * 3.0;
  }
  return rows;
}

TEST(AggColumnsTest, RowConversionRoundTrip) {
  const std::vector<AggTuple> rows = SampleRows();
  AggColumns cols = AggColumns::FromRows(rows, 3);
  ASSERT_EQ(cols.size(), rows.size());
  ASSERT_EQ(cols.num_dims(), 3u);
  const std::vector<AggTuple> back = cols.ToRows();
  ASSERT_EQ(back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (uint32_t d = 0; d < 3; ++d) {
      EXPECT_EQ(back[i].coords[d], rows[i].coords[d]);
    }
    EXPECT_EQ(back[i].sum, rows[i].sum);
    EXPECT_EQ(back[i].count, rows[i].count);
    EXPECT_EQ(back[i].min_v, rows[i].min_v);
    EXPECT_EQ(back[i].max_v, rows[i].max_v);
  }
  std::vector<AggTuple> appended;
  cols.AppendToRows(&appended);
  cols.AppendToRows(&appended);
  EXPECT_EQ(appended.size(), 2 * rows.size());
}

TEST(AggColumnsTest, SerializationRoundTripAndCorruption) {
  AggColumns cols = AggColumns::FromRows(SampleRows(), 3);
  std::vector<uint8_t> bytes;
  cols.SerializeTo(&bytes);
  auto restored = AggColumns::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == cols);

  // Truncation must be detected, not crash.
  auto truncated = AggColumns::Deserialize(bytes.data(), bytes.size() - 9);
  EXPECT_FALSE(truncated.ok());
  auto tiny = AggColumns::Deserialize(bytes.data(), 3);
  EXPECT_FALSE(tiny.ok());

  // Empty container round-trips too.
  AggColumns empty(2);
  bytes.clear();
  empty.SerializeTo(&bytes);
  auto restored_empty = AggColumns::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(restored_empty.ok());
  EXPECT_TRUE(*restored_empty == empty);
}

TEST(AggColumnsTest, SortAndFilterMatchRowHelpers) {
  std::vector<AggTuple> rows = SampleRows();
  AggColumns cols = AggColumns::FromRows(rows, 3);

  cols.SortRowMajor();
  SortRows(&rows, 3);
  EXPECT_TRUE(cols == AggColumns::FromRows(rows, 3));

  std::array<OrdinalRange, storage::kMaxDims> sel{};
  sel[0] = OrdinalRange{0, 4};
  sel[1] = OrdinalRange{0, 5};
  sel[2] = OrdinalRange{0, 7};
  cols.FilterToSelection(sel);
  const std::vector<AggTuple> kept = FilterRows(rows, 3, sel);
  EXPECT_TRUE(cols == AggColumns::FromRows(kept, 3));
}

TEST(AggColumnsTest, ByteSizeTracksCapacity) {
  AggColumns cols(2);
  const uint64_t empty_size = cols.ByteSize();
  cols.Reserve(128);
  EXPECT_GE(cols.ByteSize(),
            empty_size + 128 * (2 * sizeof(uint32_t) + 3 * sizeof(double) +
                                sizeof(uint64_t)));
}

// ---------------------- dense == hash property testing ----------------------

/// Feeds the same tuples to a dense-forced and a hash-forced kernel for the
/// same chunk; results must match bit for bit (identical fold order =>
/// identical FP operation sequences).
void ExpectKernelsBitIdentical(const ChunkingScheme* scheme,
                               const GroupBySpec& target, uint64_t chunk_num,
                               const std::vector<Tuple>& chunk_tuples) {
  ChunkAggregator dense(scheme, target, chunk_num,
                        /*dense_cell_limit=*/~0ull, nullptr);
  ChunkAggregator hash(scheme, target, chunk_num, /*dense_cell_limit=*/0,
                       nullptr);
  ASSERT_TRUE(dense.dense());
  ASSERT_FALSE(hash.dense());
  for (const Tuple& t : chunk_tuples) {
    dense.AddBase(t);
    hash.AddBase(t);
  }
  // Batch (columnar) feed must also match the row-at-a-time feed.
  ChunkAggregator dense_batch(scheme, target, chunk_num, ~0ull, nullptr);
  TupleColumns batch;
  batch.num_dims = scheme->num_dims();
  for (const Tuple& t : chunk_tuples) batch.PushTuple(t);
  dense_batch.AddBaseColumns(batch, nullptr, nullptr);

  const AggColumns a = dense.TakeColumns();
  const AggColumns b = hash.TakeColumns();
  const AggColumns c = dense_batch.TakeColumns();
  EXPECT_TRUE(a == b) << "dense and hash kernels disagree on chunk "
                      << chunk_num;
  EXPECT_TRUE(a == c) << "batch and row-at-a-time dense feeds disagree on "
                      << "chunk " << chunk_num;
}

TEST(DenseHashProperty, BitIdenticalAcrossRandomSchemas) {
  Random rng(20260806);
  for (int trial = 0; trial < 6; ++trial) {
    // Random 2-3 dimension schema with random hierarchy shapes. Odd
    // cardinalities exercise boundary chunks whose extents are smaller
    // than interior ones (the Section 5.2.3 "extra tuples" shapes).
    const uint32_t num_dims = 2 + static_cast<uint32_t>(rng.Uniform(2));
    std::vector<schema::Dimension> dims;
    for (uint32_t d = 0; d < num_dims; ++d) {
      std::vector<uint32_t> cards;
      uint32_t card = 3 + static_cast<uint32_t>(rng.Uniform(5));
      const uint32_t depth = 1 + static_cast<uint32_t>(rng.Uniform(2));
      for (uint32_t l = 0; l < depth; ++l) {
        cards.push_back(card);
        card *= 2 + static_cast<uint32_t>(rng.Uniform(3));
      }
      auto dim = schema::BuildSyntheticDimension(
          "D" + std::to_string(trial) + "_" + std::to_string(d), cards);
      ASSERT_TRUE(dim.ok());
      dims.push_back(std::move(dim).value());
    }
    schema::StarSchema schema("fact", std::move(dims), "m");

    ChunkingOptions copts;
    copts.range_fraction = 0.3;
    auto scheme_or = ChunkingScheme::Build(&schema, copts, 4000);
    ASSERT_TRUE(scheme_or.ok());
    const ChunkingScheme scheme = std::move(scheme_or).value();

    schema::FactGenOptions gen;
    gen.num_tuples = 4000;
    gen.seed = 1000 + trial;
    const std::vector<Tuple> tuples = schema::GenerateFactTuples(schema, gen);

    // Every group-by level combination on every dimension.
    std::vector<GroupBySpec> specs;
    GroupBySpec spec{};
    spec.num_dims = num_dims;
    std::function<void(uint32_t)> enumerate = [&](uint32_t d) {
      if (d == num_dims) {
        specs.push_back(spec);
        return;
      }
      const uint32_t depth = schema.dimension(d).hierarchy.depth();
      for (uint32_t l = 0; l <= depth; ++l) {
        spec.levels[d] = l;
        enumerate(d + 1);
      }
    };
    enumerate(0);

    for (const GroupBySpec& gb : specs) {
      // Route tuples to chunks of this group-by.
      std::map<uint64_t, std::vector<Tuple>> per_chunk;
      for (const Tuple& t : tuples) {
        ChunkCoords coords{};
        for (uint32_t d = 0; d < num_dims; ++d) {
          const auto& h = schema.dimension(d).hierarchy;
          coords[d] = h.AncestorAt(h.depth(), t.keys[d], gb.levels[d]);
        }
        per_chunk[scheme.ChunkOfCell(gb, coords)].push_back(t);
      }
      // Check the first, a middle, and the last non-empty chunk (the last
      // chunk in row-major order is a boundary chunk on every dimension).
      if (per_chunk.empty()) continue;
      std::vector<uint64_t> picks{per_chunk.begin()->first,
                                  std::next(per_chunk.begin(),
                                            per_chunk.size() / 2)
                                      ->first,
                                  per_chunk.rbegin()->first};
      for (uint64_t chunk_num : picks) {
        ExpectKernelsBitIdentical(&scheme, gb, chunk_num,
                                  per_chunk.at(chunk_num));
      }
    }
  }
}

TEST(DenseHashProperty, AggInputsBitIdentical) {
  // Dense and hash must also agree when folding already-aggregated rows
  // (the closure path: coarse chunk from finer materialized rows).
  auto s = schema::BuildPaperSchema();
  ASSERT_TRUE(s.ok());
  ChunkingOptions copts;
  copts.range_fraction = 0.2;
  auto scheme_or = ChunkingScheme::Build(&*s, copts, 20000);
  ASSERT_TRUE(scheme_or.ok());
  const ChunkingScheme& scheme = *scheme_or;

  schema::FactGenOptions gen;
  gen.num_tuples = 20000;
  gen.seed = 99;
  const std::vector<Tuple> tuples = schema::GenerateFactTuples(*s, gen);

  const GroupBySpec fine{{2, 1, 2, 1}, 4};
  const GroupBySpec coarse{{1, 1, 1, 1}, 4};
  HashAggregator to_fine(&scheme, fine);
  for (const Tuple& t : tuples) to_fine.AddBase(t);
  AggColumns fine_cols = to_fine.TakeColumns();
  fine_cols.SortRowMajor();

  // Route fine rows to coarse chunks, then compare kernels per chunk.
  std::map<uint64_t, std::vector<size_t>> per_chunk;
  for (size_t i = 0; i < fine_cols.size(); ++i) {
    ChunkCoords coords{};
    for (uint32_t d = 0; d < 4; ++d) {
      const auto& h = s->dimension(d).hierarchy;
      coords[d] = h.AncestorAt(fine.levels[d], fine_cols.coords(d)[i],
                               coarse.levels[d]);
    }
    per_chunk[scheme.ChunkOfCell(coarse, coords)].push_back(i);
  }
  for (const auto& [chunk_num, idxs] : per_chunk) {
    ChunkAggregator dense(&scheme, coarse, chunk_num, ~0ull, nullptr);
    ChunkAggregator hash(&scheme, coarse, chunk_num, 0, nullptr);
    for (size_t i : idxs) {
      const AggTuple row = fine_cols.RowAt(i);
      dense.AddAgg(row, fine);
      hash.AddAgg(row, fine);
    }
    EXPECT_TRUE(dense.TakeColumns() == hash.TakeColumns())
        << "chunk " << chunk_num;
  }
}

// ---------------------- scalar == AVX2 dispatch property --------------------

/// Bit-level column comparison: NaN != NaN under operator==, so the
/// double columns are compared as raw bytes.
void ExpectColsBitIdentical(const AggColumns& a, const AggColumns& b) {
  ASSERT_EQ(a.num_dims(), b.num_dims());
  ASSERT_EQ(a.size(), b.size());
  for (uint32_t d = 0; d < a.num_dims(); ++d) {
    EXPECT_EQ(a.coords(d), b.coords(d));
  }
  EXPECT_EQ(a.counts(), b.counts());
  const size_t n = a.size();
  if (n == 0) return;
  EXPECT_EQ(std::memcmp(a.sums().data(), b.sums().data(), n * 8), 0);
  EXPECT_EQ(std::memcmp(a.mins().data(), b.mins().data(), n * 8), 0);
  EXPECT_EQ(std::memcmp(a.maxs().data(), b.maxs().data(), n * 8), 0);
}

/// Measures drawn to stress FP edge semantics: NaN propagation through
/// min/max, +/-inf sentinel interactions, denormals, signed zeros.
double EdgeMeasure(Random* rng) {
  switch (rng->Uniform(10)) {
    case 0:
      return std::numeric_limits<double>::quiet_NaN();
    case 1:
      return std::numeric_limits<double>::infinity();
    case 2:
      return -std::numeric_limits<double>::infinity();
    case 3:
      return std::numeric_limits<double>::denorm_min();
    case 4:
      return -std::numeric_limits<double>::denorm_min();
    case 5:
      return -0.0;
    default:
      return rng->NextDouble() * 2000.0 - 1000.0;
  }
}

TEST(SimdDispatchProperty, DenseFoldBitIdenticalScalarVsAvx2) {
  if (simd::DetectedLevel() != simd::IsaLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  Random rng(20260809);
  for (int trial = 0; trial < 4; ++trial) {
    const uint32_t num_dims = 1 + static_cast<uint32_t>(rng.Uniform(4));
    std::vector<schema::Dimension> dims;
    for (uint32_t d = 0; d < num_dims; ++d) {
      std::vector<uint32_t> cards;
      uint32_t card = 3 + static_cast<uint32_t>(rng.Uniform(5));
      const uint32_t depth = 1 + static_cast<uint32_t>(rng.Uniform(2));
      for (uint32_t l = 0; l < depth; ++l) {
        cards.push_back(card);
        card *= 2 + static_cast<uint32_t>(rng.Uniform(3));
      }
      auto dim = schema::BuildSyntheticDimension(
          "S" + std::to_string(trial) + "_" + std::to_string(d), cards);
      ASSERT_TRUE(dim.ok());
      dims.push_back(std::move(dim).value());
    }
    schema::StarSchema schema("fact", std::move(dims), "m");
    ChunkingOptions copts;
    copts.range_fraction = 0.3;
    auto scheme_or = ChunkingScheme::Build(&schema, copts, 3000);
    ASSERT_TRUE(scheme_or.ok());
    const ChunkingScheme scheme = std::move(scheme_or).value();

    schema::FactGenOptions gen;
    gen.num_tuples = 3000;
    gen.seed = 555 + trial;
    std::vector<Tuple> tuples = schema::GenerateFactTuples(schema, gen);
    for (Tuple& t : tuples) t.measure = EdgeMeasure(&rng);

    // Finest and coarsest-but-one group-bys give small and large LUTs.
    std::vector<GroupBySpec> specs;
    GroupBySpec finest{};
    finest.num_dims = num_dims;
    GroupBySpec coarse{};
    coarse.num_dims = num_dims;
    for (uint32_t d = 0; d < num_dims; ++d) {
      finest.levels[d] = schema.dimension(d).hierarchy.depth();
      coarse.levels[d] = 1;
    }
    specs.push_back(finest);
    if (!(coarse == finest)) specs.push_back(coarse);

    for (const GroupBySpec& gb : specs) {
      std::map<uint64_t, std::vector<Tuple>> per_chunk;
      for (const Tuple& t : tuples) {
        ChunkCoords coords{};
        for (uint32_t d = 0; d < num_dims; ++d) {
          const auto& h = schema.dimension(d).hierarchy;
          coords[d] = h.AncestorAt(h.depth(), t.keys[d], gb.levels[d]);
        }
        per_chunk[scheme.ChunkOfCell(gb, coords)].push_back(t);
      }
      if (per_chunk.empty()) continue;
      const uint64_t chunk_num = per_chunk.rbegin()->first;  // boundary chunk
      const std::vector<Tuple>& chunk_tuples = per_chunk.at(chunk_num);

      // Feed in odd-length sub-batches so the 4-wide kernel's tails and
      // head/tail transitions all fire; also one empty batch.
      const auto fold = [&](simd::IsaLevel level) {
        simd::ScopedLevel pin(level);
        ChunkAggregator agg(&scheme, gb, chunk_num, ~0ull, nullptr);
        TupleColumns empty;
        empty.num_dims = scheme.num_dims();
        agg.AddBaseColumns(empty, nullptr, nullptr);  // empty batch is a no-op
        size_t i = 0;
        size_t step = 1;
        while (i < chunk_tuples.size()) {
          TupleColumns batch;
          batch.num_dims = scheme.num_dims();
          const size_t hi = std::min(chunk_tuples.size(), i + step);
          for (; i < hi; ++i) batch.PushTuple(chunk_tuples[i]);
          agg.AddBaseColumns(batch, nullptr, nullptr);
          step = step * 2 + 1;  // 1, 3, 7, 15, ... odd lengths
        }
        return agg.TakeColumns();
      };
      const AggColumns scalar_cols = fold(simd::IsaLevel::kScalar);
      const AggColumns avx2_cols = fold(simd::IsaLevel::kAvx2);
      ExpectColsBitIdentical(scalar_cols, avx2_cols);
    }
  }
}

TEST(SimdDispatchProperty, EmptyCellBoxAndSingleRow) {
  if (simd::DetectedLevel() != simd::IsaLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  auto s = schema::BuildPaperSchema();
  ASSERT_TRUE(s.ok());
  ChunkingOptions copts;
  copts.range_fraction = 0.2;
  auto scheme_or = ChunkingScheme::Build(&*s, copts, 1000);
  ASSERT_TRUE(scheme_or.ok());
  const ChunkingScheme& scheme = *scheme_or;
  const GroupBySpec gb{{1, 1, 1, 1}, 4};

  for (simd::IsaLevel level :
       {simd::IsaLevel::kScalar, simd::IsaLevel::kAvx2}) {
    simd::ScopedLevel pin(level);
    // No rows folded: the box stays empty and extraction yields no cells.
    ChunkAggregator agg(&scheme, gb, 0, ~0ull, nullptr);
    EXPECT_EQ(agg.TakeColumns().size(), 0u);
  }

  // A single row (pure tail path) must also match across dispatch levels.
  schema::FactGenOptions gen;
  gen.num_tuples = 1;
  gen.seed = 3;
  const std::vector<Tuple> one = schema::GenerateFactTuples(*s, gen);
  ChunkCoords coords{};
  for (uint32_t d = 0; d < 4; ++d) {
    const auto& h = s->dimension(d).hierarchy;
    coords[d] = h.AncestorAt(h.depth(), one[0].keys[d], gb.levels[d]);
  }
  const uint64_t chunk_num = scheme.ChunkOfCell(gb, coords);
  const auto fold = [&](simd::IsaLevel level) {
    simd::ScopedLevel pin(level);
    ChunkAggregator agg(&scheme, gb, chunk_num, ~0ull, nullptr);
    TupleColumns batch;
    batch.num_dims = scheme.num_dims();
    batch.PushTuple(one[0]);
    agg.AddBaseColumns(batch, nullptr, nullptr);
    return agg.TakeColumns();
  };
  ExpectColsBitIdentical(fold(simd::IsaLevel::kScalar),
                         fold(simd::IsaLevel::kAvx2));
}

TEST(SimdDispatchProperty, FilterToSelectionBitIdenticalScalarVsAvx2) {
  if (simd::DetectedLevel() != simd::IsaLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  Random rng(77);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                   size_t{100}, size_t{1000}}) {
    const uint32_t nd = 1 + static_cast<uint32_t>(rng.Uniform(4));
    AggColumns cols(nd);
    for (size_t i = 0; i < n; ++i) {
      uint32_t coords[storage::kMaxDims] = {};
      for (uint32_t d = 0; d < nd; ++d) {
        coords[d] = static_cast<uint32_t>(rng.Uniform(50));
      }
      cols.PushCell(coords, EdgeMeasure(&rng), rng.Uniform(100),
                    EdgeMeasure(&rng), EdgeMeasure(&rng));
    }
    std::array<OrdinalRange, storage::kMaxDims> sel{};
    for (uint32_t d = 0; d < storage::kMaxDims; ++d) {
      const uint32_t lo = static_cast<uint32_t>(rng.Uniform(40));
      sel[d] = OrdinalRange{lo, lo + static_cast<uint32_t>(rng.Uniform(20))};
    }
    AggColumns scalar_cols = cols;
    AggColumns avx2_cols = cols;
    {
      simd::ScopedLevel pin(simd::IsaLevel::kScalar);
      scalar_cols.FilterToSelection(sel);
    }
    {
      simd::ScopedLevel pin(simd::IsaLevel::kAvx2);
      avx2_cols.FilterToSelection(sel);
    }
    ExpectColsBitIdentical(scalar_cols, avx2_cols);
  }
}

// --------------------------- columnar file layout ---------------------------

TEST(AggFileColumnsTest, AppendColumnsMatchesRowAppend) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 256);
  // Two files, same logical rows: one loaded row-wise, one column-wise.
  auto by_row = AggFile::Create(&pool, 3);
  auto by_col = AggFile::Create(&pool, 3);
  ASSERT_TRUE(by_row.ok());
  ASSERT_TRUE(by_col.ok());

  Random rng(7);
  AggColumns cols(3);
  // Enough rows to cross several page boundaries mid-batch.
  const uint32_t n = by_row->rows_per_page() * 3 + 17;
  for (uint32_t i = 0; i < n; ++i) {
    AggTuple row;
    row.coords = {i, i * 2, static_cast<uint32_t>(rng.Uniform(1000))};
    row.sum = rng.NextDouble() * 100.0;
    row.count = 1 + rng.Uniform(50);
    row.min_v = -row.sum;
    row.max_v = row.sum * 2;
    ASSERT_TRUE(by_row->Append(row).ok());
    cols.PushRow(row);
  }
  auto first = by_col->AppendColumns(cols);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  EXPECT_EQ(by_col->num_rows(), by_row->num_rows());

  // Point reads and row scans agree across the two load paths.
  for (uint64_t rid : {uint64_t{0}, uint64_t{n / 2}, uint64_t{n - 1}}) {
    AggTuple a, b;
    ASSERT_TRUE(by_row->Get(rid, &a).ok());
    ASSERT_TRUE(by_col->Get(rid, &b).ok());
    EXPECT_EQ(a.coords, b.coords);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.count, b.count);
  }

  // Columnar range scan returns exactly the slice that was appended.
  AggColumns slice(3);
  ASSERT_TRUE(by_col->ScanRangeColumns(10, n - 25, &slice).ok());
  ASSERT_EQ(slice.size(), static_cast<size_t>(n - 25));
  for (size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice.coords(0)[i], cols.coords(0)[i + 10]);
    EXPECT_EQ(slice.sums()[i], cols.sums()[i + 10]);
    EXPECT_EQ(slice.counts()[i], cols.counts()[i + 10]);
    EXPECT_EQ(slice.mins()[i], cols.mins()[i + 10]);
    EXPECT_EQ(slice.maxs()[i], cols.maxs()[i + 10]);
  }
  // Appending into a non-empty output accumulates (coalesced-run usage).
  ASSERT_TRUE(by_col->ScanRangeColumns(0, 5, &slice).ok());
  EXPECT_EQ(slice.size(), static_cast<size_t>(n - 25 + 5));

  // Mixed loads: row appends after a columnar batch stay consistent.
  AggTuple extra;
  extra.coords = {9999, 1, 2};
  extra.sum = 3.25;
  ASSERT_TRUE(by_col->Append(extra).ok());
  AggTuple got;
  ASSERT_TRUE(by_col->Get(n, &got).ok());
  EXPECT_EQ(got.coords[0], 9999u);
  EXPECT_EQ(got.sum, 3.25);
}

TEST(AggFileColumnsTest, ReopenPreservesColumnarPages) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 64);
  uint32_t file_id;
  AggColumns cols(2);
  for (uint32_t i = 0; i < 300; ++i) {
    const uint32_t coords[2] = {i, 300 - i};
    cols.PushCell(coords, i * 0.5, i, -1.0 * i, 2.0 * i);
  }
  {
    auto file = AggFile::Create(&pool, 2);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->AppendColumns(cols).ok());
    ASSERT_TRUE(file->SyncHeader().ok());
    file_id = file->file_id();
  }
  auto file = AggFile::Open(&pool, file_id);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->num_rows(), 300u);
  AggColumns back(2);
  ASSERT_TRUE(file->ScanRangeColumns(0, 300, &back).ok());
  EXPECT_TRUE(back == cols);
}

TEST(FactFileColumnsTest, ScanRangeColumnsMatchesRowScan) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 256);
  auto file = storage::FactFile::Create(&pool, storage::TupleDesc{3});
  ASSERT_TRUE(file.ok());
  Random rng(11);
  const uint32_t n = file->tuples_per_page() * 2 + 31;
  for (uint32_t i = 0; i < n; ++i) {
    Tuple t;
    t.keys[0] = i;
    t.keys[1] = static_cast<uint32_t>(rng.Uniform(100));
    t.keys[2] = i % 7;
    t.measure = rng.NextDouble();
    ASSERT_TRUE(file->Append(t).ok());
  }
  TupleColumns cols;
  ASSERT_TRUE(file->ScanRangeColumns(5, n - 9, &cols).ok());
  ASSERT_EQ(cols.size(), static_cast<size_t>(n - 9));
  size_t i = 0;
  ASSERT_TRUE(file->ScanRange(5, n - 9,
                              [&](storage::RowId, const Tuple& t) {
                                EXPECT_EQ(cols.keys[0][i], t.keys[0]);
                                EXPECT_EQ(cols.keys[1][i], t.keys[1]);
                                EXPECT_EQ(cols.keys[2][i], t.keys[2]);
                                EXPECT_EQ(cols.measure[i], t.measure);
                                ++i;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(i, cols.size());
}

// ----------------------- engine-level determinism tests ----------------------

class KernelEngineFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 20000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    ChunkingOptions opts;
    opts.range_fraction = 0.2;
    auto scheme = ChunkingScheme::Build(schema_.get(), opts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<ChunkingScheme>(std::move(scheme).value());

    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 17;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);

    pool_ = std::make_unique<BufferPool>(&disk_, 4096);
    auto file = ChunkedFile::BulkLoad(pool_.get(), scheme_.get(), tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<ChunkedFile>(std::move(file).value());
  }

  std::vector<uint64_t> AllChunks(const GroupBySpec& gb) const {
    const auto& grid = scheme_->GridFor(gb);
    std::vector<uint64_t> nums(grid.num_chunks());
    for (uint64_t i = 0; i < nums.size(); ++i) nums[i] = i;
    return nums;
  }

  static void ExpectIdentical(const std::vector<ChunkData>& a,
                              const std::vector<ChunkData>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].chunk_num, b[i].chunk_num) << "slot " << i;
      EXPECT_TRUE(a[i].cols == b[i].cols) << "chunk " << a[i].chunk_num;
    }
  }

  InMemoryDiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<ChunkingScheme> scheme_;
  std::vector<Tuple> tuples_;
  std::unique_ptr<ChunkedFile> file_;
};

TEST_F(KernelEngineFixture, CoalescedEqualsPerRunIO) {
  // ALL on the last (fastest-varying) dimension makes each target chunk's
  // source box span that dimension completely, so adjacent source chunks
  // are contiguous in the clustered file and runs actually merge.
  const GroupBySpec gb{{1, 1, 1, 0}, 4};
  const std::vector<uint64_t> nums = AllChunks(gb);

  BackendOptions coalesced;
  coalesced.coalesce_io = true;
  BackendEngine e1(pool_.get(), file_.get(), scheme_.get(), coalesced);
  WorkCounters w1;
  auto d1 = e1.ComputeChunks(gb, nums, {}, &w1);
  ASSERT_TRUE(d1.ok());

  BackendOptions per_run;
  per_run.coalesce_io = false;
  BackendEngine e2(pool_.get(), file_.get(), scheme_.get(), per_run);
  WorkCounters w2;
  auto d2 = e2.ComputeChunks(gb, nums, {}, &w2);
  ASSERT_TRUE(d2.ok());

  ExpectIdentical(*d1, *d2);
  EXPECT_EQ(w1.tuples_processed, w2.tuples_processed);

  // At this aggregation level each target chunk covers several adjacent
  // base chunks, so coalescing must actually merge runs.
  const AggKernelStats s1 = e1.kernel_stats();
  EXPECT_GT(s1.coalesced_reads, 0u);
  EXPECT_GE(s1.runs_merged, 2 * s1.coalesced_reads);
  EXPECT_EQ(e2.kernel_stats().coalesced_reads, 0u);
}

TEST_F(KernelEngineFixture, DenseEqualsHashEndToEnd) {
  for (const GroupBySpec gb :
       {GroupBySpec{{1, 1, 1, 1}, 4}, GroupBySpec{{2, 1, 2, 1}, 4},
        GroupBySpec{{1, 0, 0, 1}, 4}}) {
    const std::vector<uint64_t> nums = AllChunks(gb);

    BackendOptions dense_opts;  // default limit: everything dense here
    BackendEngine dense_engine(pool_.get(), file_.get(), scheme_.get(),
                               dense_opts);
    WorkCounters w1;
    auto dense_data = dense_engine.ComputeChunks(gb, nums, {}, &w1);
    ASSERT_TRUE(dense_data.ok());

    BackendOptions hash_opts;
    hash_opts.dense_cell_limit = 0;  // force the hash fallback everywhere
    BackendEngine hash_engine(pool_.get(), file_.get(), scheme_.get(),
                              hash_opts);
    WorkCounters w2;
    auto hash_data = hash_engine.ComputeChunks(gb, nums, {}, &w2);
    ASSERT_TRUE(hash_data.ok());

    ExpectIdentical(*dense_data, *hash_data);
    EXPECT_EQ(dense_engine.kernel_stats().hash_kernels, 0u);
    EXPECT_EQ(hash_engine.kernel_stats().dense_kernels, 0u);
    EXPECT_EQ(dense_engine.kernel_stats().rows_folded_dense,
              hash_engine.kernel_stats().rows_folded_hash);
  }
}

TEST_F(KernelEngineFixture, DenseEqualsHashWithNonGroupByFilter) {
  const GroupBySpec gb{{1, 0, 0, 0}, 4};
  const std::vector<uint64_t> nums = AllChunks(gb);
  std::vector<NonGroupByPredicate> preds;
  preds.push_back(NonGroupByPredicate{2, 2, OrdinalRange{0, 7}});

  BackendEngine dense_engine(pool_.get(), file_.get(), scheme_.get());
  BackendOptions hash_opts;
  hash_opts.dense_cell_limit = 0;
  BackendEngine hash_engine(pool_.get(), file_.get(), scheme_.get(),
                            hash_opts);
  WorkCounters w1, w2;
  auto d1 = dense_engine.ComputeChunks(gb, nums, preds, &w1);
  auto d2 = hash_engine.ComputeChunks(gb, nums, preds, &w2);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  ExpectIdentical(*d1, *d2);
}

TEST_F(KernelEngineFixture, HashReserveDoesNotChangeResults) {
  // PackKey folding with reserved capacity must not affect contents.
  const GroupBySpec gb{{2, 1, 2, 1}, 4};
  HashAggregator plain(scheme_.get(), gb);
  HashAggregator reserved(scheme_.get(), gb, /*reserve_cells=*/1u << 14);
  for (const Tuple& t : tuples_) {
    plain.AddBase(t);
    reserved.AddBase(t);
  }
  AggColumns a = plain.TakeColumns();
  AggColumns b = reserved.TakeColumns();
  a.SortRowMajor();
  b.SortRowMajor();
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace chunkcache::backend
