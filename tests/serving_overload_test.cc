// Overload behavior: open-loop arrival streams at a multiple of the
// admitted capacity must degrade gracefully — every offered query gets
// exactly one terminal outcome (accepted + shed + errors == offered, read
// from the metrics registry), every shed is an explicit RESOURCE_EXHAUSTED
// frame flagged kFlagShed, the tier never executes a shed query, and the
// latency of *admitted* queries stays bounded because admission caps the
// queue, not the worker pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/middle_tier.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace chunkcache::server {
namespace {

using backend::StarJoinQuery;

StarJoinQuery SampleQuery() {
  StarJoinQuery q;
  q.group_by.num_dims = 4;
  for (uint32_t d = 0; d < 4; ++d) {
    q.group_by.levels[d] = 1;
    q.selection[d] = schema::OrdinalRange{0, 3};
  }
  return q;
}

/// Fixed-service-time tier: each query costs `service_ms` of wall clock
/// (interruptible by deadline/cancel), so serving capacity is exactly
/// num_workers / service_time and overload multiples are computable.
class DelayTier : public core::MiddleTier {
 public:
  explicit DelayTier(uint32_t service_ms) : service_ms_(service_ms) {}

  Result<std::vector<backend::ResultRow>> Execute(
      const StarJoinQuery& query, core::QueryStats* stats) override {
    return ExecuteWithControl(query, stats, ExecControl{});
  }

  Result<std::vector<backend::ResultRow>> ExecuteWithControl(
      const StarJoinQuery& query, core::QueryStats* stats,
      const ExecControl& ctrl) override {
    (void)query;
    (void)stats;
    executed_.fetch_add(1);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(service_ms_);
    while (std::chrono::steady_clock::now() < until) {
      Status st = ctrl.Check();
      if (!st.ok()) return st;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::vector<backend::ResultRow> rows(2);
    rows[0].count = 1;
    rows[1].count = 2;
    return rows;
  }

  std::string name() const override { return "delay"; }

  uint64_t executed() const { return executed_.load(); }

 private:
  uint32_t service_ms_;
  std::atomic<uint64_t> executed_{0};
};

struct TenantOutcome {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t mislabeled_sheds = 0;  ///< shed without RESOURCE_EXHAUSTED+flag
};

/// One tenant's open-loop session: a sender thread emits queries on a
/// fixed arrival schedule without waiting for responses; a reader thread
/// drains and classifies every response on the same connection.
TenantOutcome RunOpenLoopTenant(uint16_t port, uint32_t tenant_id,
                                uint64_t num_queries,
                                std::chrono::microseconds interarrival) {
  ClientOptions copts;
  copts.port = port;
  copts.tenant_id = tenant_id;
  copts.recv_timeout_ms = 30000;
  auto client = ChunkClient::Connect(copts);
  EXPECT_TRUE(client.ok());
  TenantOutcome out;
  if (!client.ok()) return out;

  std::atomic<uint64_t> sent{0};
  std::thread sender([&] {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < num_queries; ++i) {
      // Open loop: arrivals follow the schedule, not the service rate.
      std::this_thread::sleep_until(start + interarrival * i);
      auto id = (*client)->SendQuery(SampleQuery());
      if (!id.ok()) break;
      sent.fetch_add(1);
    }
  });

  sender.join();
  out.sent = sent.load();
  // Request ids are sequential from 1 on a fresh client; drain them all.
  for (uint64_t id = 1; id <= out.sent; ++id) {
    auto resp = (*client)->WaitResponse(id);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    if (!resp.ok()) {
      ++out.errors;
      continue;
    }
    if (resp->status.ok()) {
      ++out.ok;
      EXPECT_EQ(resp->summary.row_hash, wire::HashRows(resp->rows));
    } else if (resp->shed ||
               resp->status.code() == StatusCode::kResourceExhausted) {
      ++out.shed;
      // Shed responses must be explicit and correctly labeled: the
      // RESOURCE_EXHAUSTED code AND the kFlagShed flag, together.
      if (!resp->shed ||
          resp->status.code() != StatusCode::kResourceExhausted) {
        ++out.mislabeled_sheds;
      }
    } else {
      ++out.errors;
    }
  }
  return out;
}

TEST(ServingOverloadTest, ExactAccountingAndBoundedLatencyAtOverload) {
  constexpr uint32_t kServiceMs = 5;
  constexpr uint64_t kQueriesPerTenant = 120;
  constexpr uint32_t kNumTenants = 2;
  // Admission allows ~50 qps/tenant; the schedule offers one query every
  // 6 ms = ~167 qps/tenant, i.e. ~3.3x the admitted capacity.
  DelayTier tier(kServiceMs);
  ServerOptions opts;
  opts.num_workers = 4;
  opts.admission.default_quota.rate_qps = 50;
  opts.admission.default_quota.burst = 4;
  // The global cap bounds queueing delay for admitted queries: at most 8
  // admitted-but-unfinished queries exist, so an admitted query waits at
  // most ~ (8/4 workers) service times behind others.
  opts.admission.global_max_inflight = 8;
  ChunkServer server(&tier, opts);
  ASSERT_TRUE(server.Start().ok());

  std::vector<TenantOutcome> outcomes(kNumTenants);
  std::vector<std::thread> tenants;
  for (uint32_t t = 0; t < kNumTenants; ++t) {
    tenants.emplace_back([&, t] {
      outcomes[t] =
          RunOpenLoopTenant(server.port(), /*tenant_id=*/t + 1,
                            kQueriesPerTenant,
                            std::chrono::microseconds(6000));
    });
  }
  for (auto& th : tenants) th.join();

  uint64_t sent = 0, ok = 0, shed = 0, errors = 0, mislabeled = 0;
  for (const auto& o : outcomes) {
    sent += o.sent;
    ok += o.ok;
    shed += o.shed;
    errors += o.errors;
    mislabeled += o.mislabeled_sheds;
  }
  ASSERT_EQ(sent, kQueriesPerTenant * kNumTenants);
  // Client-side books: every sent query got exactly one terminal response.
  EXPECT_EQ(ok + shed + errors, sent);
  EXPECT_EQ(mislabeled, 0u);
  EXPECT_EQ(errors, 0u);
  // At ~3x capacity, sheds must happen — and plenty of them. The token
  // budget over the ~0.72 s run is ~(0.72*50 + 4) per tenant ≈ 40, so at
  // least half the stream sheds even with generous timing slack.
  EXPECT_GT(shed, sent / 4);
  // But real work got through too (burst + refill tokens).
  EXPECT_GT(ok, 0u);

  // Server-side books, read from the registry: exact, not approximate.
  const auto snap = server.metrics().TakeSnapshot();
  EXPECT_EQ(snap.counter("server.queries.offered"), sent);
  EXPECT_EQ(snap.counter("server.queries.offered"),
            snap.counter("server.queries.ok") +
                snap.counter("server.queries.shed") +
                snap.counter("server.queries.errors"));
  EXPECT_EQ(snap.counter("server.queries.ok"), ok);
  EXPECT_EQ(snap.counter("server.queries.shed"), shed);
  // Shed queries never reached the tier: executed == admitted == ok.
  EXPECT_EQ(tier.executed(), ok);
  EXPECT_EQ(snap.counter("server.admission.admitted"), ok);

  // Bounded latency for admitted queries: with the global inflight cap at
  // 8 and 4 workers, an admitted query queues behind at most one service
  // time; p99 far under a second means overload never poisoned the
  // admitted class. (Generous bound: CI machines are noisy.)
  const auto it = snap.histograms.find("server.query.latency_ns");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, ok);
  EXPECT_LT(it->second.Quantile(0.99), 2e9) << "admitted p99 above 2 s";

  server.Stop();
}

TEST(ServingOverloadTest, GlobalInflightCapShedsWhenWorkersAreBusy) {
  // No rate limits at all — only the global concurrency backstop. A burst
  // of simultaneous slow queries must shed everything beyond the cap.
  constexpr uint32_t kCap = 3;
  DelayTier tier(/*service_ms=*/200);
  ServerOptions opts;
  opts.num_workers = 2;
  opts.admission.global_max_inflight = kCap;
  ChunkServer server(&tier, opts);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.port = server.port();
  copts.tenant_id = 1;
  auto client = ChunkClient::Connect(copts);
  ASSERT_TRUE(client.ok());

  constexpr uint64_t kBurst = 10;
  for (uint64_t i = 0; i < kBurst; ++i) {
    ASSERT_TRUE((*client)->SendQuery(SampleQuery()).ok());
  }
  uint64_t ok = 0, shed = 0;
  for (uint64_t id = 1; id <= kBurst; ++id) {
    auto resp = (*client)->WaitResponse(id);
    ASSERT_TRUE(resp.ok());
    if (resp->status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(resp->status.code(), StatusCode::kResourceExhausted);
      ASSERT_TRUE(resp->shed);
      ++shed;
    }
  }
  // Exactly kCap admitted (the I/O thread admits serially, so the cap is
  // hit deterministically: queries 4..10 all arrive while 1..3 hold slots
  // for 200 ms).
  EXPECT_EQ(ok, kCap);
  EXPECT_EQ(shed, kBurst - kCap);
  EXPECT_EQ(tier.executed(), kCap);

  const auto snap = server.metrics().TakeSnapshot();
  EXPECT_EQ(snap.counter("server.queries.offered"), kBurst);
  EXPECT_EQ(snap.counter("server.admission.shed_global_inflight"), shed);
  EXPECT_EQ(snap.counter("server.queries.offered"),
            snap.counter("server.queries.ok") +
                snap.counter("server.queries.shed") +
                snap.counter("server.queries.errors"));
  server.Stop();
}

}  // namespace
}  // namespace chunkcache::server
