// Property-based sweeps of the chunk machinery over *random* hierarchies
// and chunk-range sizes (the paper-schema cases live in chunks_test.cc).
// Invariants checked:
//   P1  chunk ranges partition every level exactly;
//   P2  a range at level l maps to a disjoint, contiguous, gap-free set of
//       ranges at level l+1 whose union is exactly the mapped value set
//       (the Figure 5/6 requirement);
//   P3  SpanAtLevel composes (closure property);
//   P4  grids tile the space: chunk extents are disjoint and cover all
//       cells; ChunkOfCell is consistent with extents;
//   P5  SourceBox covers exactly the base cells of its target chunk.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "chunks/chunking_scheme.h"
#include "common/random.h"
#include "schema/star_schema.h"

namespace chunkcache::chunks {
namespace {

using schema::Dimension;
using schema::Hierarchy;
using schema::HierarchyBuilder;
using schema::OrdinalRange;
using schema::StarSchema;

/// Builds a random hierarchy: `depth` levels, random fanouts (including
/// fanout-1 parents and uneven fanouts, which stress the alignment code).
Hierarchy RandomHierarchy(Random& rng, uint32_t depth) {
  HierarchyBuilder b;
  uint32_t card = 1 + static_cast<uint32_t>(rng.Uniform(6));
  b.AddLevel("L1");
  for (uint32_t i = 0; i < card; ++i) {
    CHUNKCACHE_CHECK(b.AddMember("1." + std::to_string(i)).ok());
  }
  uint32_t prev_card = card;
  for (uint32_t l = 2; l <= depth; ++l) {
    b.AddLevel("L" + std::to_string(l));
    uint32_t child = 0;
    for (uint32_t p = 0; p < prev_card; ++p) {
      const uint32_t fanout = 1 + static_cast<uint32_t>(rng.Uniform(5));
      for (uint32_t c = 0; c < fanout; ++c, ++child) {
        CHUNKCACHE_CHECK(
            b.AddMember(std::to_string(l) + "." + std::to_string(child), p)
                .ok());
      }
    }
    prev_card = child;
  }
  auto h = b.Build();
  CHUNKCACHE_CHECK(h.ok());
  return std::move(h).value();
}

class ChunkPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChunkPropertyTest, RangesPartitionAndNest) {
  Random rng(GetParam() * 1000 + 1);
  for (int iter = 0; iter < 30; ++iter) {
    const uint32_t depth = 1 + static_cast<uint32_t>(rng.Uniform(4));
    const Hierarchy h = RandomHierarchy(rng, depth);
    ChunkRangeSizes sizes;
    for (uint32_t l = 1; l <= depth; ++l) {
      sizes.per_level.push_back(
          1 + static_cast<uint32_t>(rng.Uniform(h.LevelCardinality(l))));
    }
    auto dc = DimensionChunking::Build(h, sizes);
    ASSERT_TRUE(dc.ok());

    // P1: partition at every level.
    for (uint32_t l = 1; l <= depth; ++l) {
      uint32_t next = 0;
      for (uint32_t i = 0; i < dc->NumRanges(l); ++i) {
        const OrdinalRange r = dc->Range(l, i);
        ASSERT_EQ(r.begin, next);
        ASSERT_LE(r.begin, r.end);
        next = r.end + 1;
        for (uint32_t v = r.begin; v <= r.end; ++v) {
          ASSERT_EQ(dc->RangeOfValue(l, v), i);
        }
      }
      ASSERT_EQ(next, h.LevelCardinality(l));
    }

    // P2: child spans are contiguous, disjoint, complete, and match the
    // hierarchy's value mapping.
    for (uint32_t l = 1; l < depth; ++l) {
      uint32_t next_child_range = 0;
      for (uint32_t i = 0; i < dc->NumRanges(l); ++i) {
        const OrdinalRange span = dc->ChildRangeSpan(l, i);
        ASSERT_EQ(span.begin, next_child_range);
        next_child_range = span.end + 1;
        const OrdinalRange parent = dc->Range(l, i);
        const OrdinalRange mapped{h.ChildRange(l, parent.begin).begin,
                                  h.ChildRange(l, parent.end).end};
        ASSERT_EQ(dc->Range(l + 1, span.begin).begin, mapped.begin);
        ASSERT_EQ(dc->Range(l + 1, span.end).end, mapped.end);
      }
      ASSERT_EQ(next_child_range, dc->NumRanges(l + 1));
    }

    // P3: SpanAtLevel equals the composition of ChildRangeSpan.
    for (uint32_t from = 0; from <= depth; ++from) {
      for (uint32_t to = from; to <= depth; ++to) {
        for (uint32_t i = 0; i < dc->NumRanges(from); ++i) {
          OrdinalRange expect{i, i};
          for (uint32_t l = from; l < to; ++l) {
            expect = OrdinalRange{dc->ChildRangeSpan(l, expect.begin).begin,
                                  dc->ChildRangeSpan(l, expect.end).end};
          }
          ASSERT_EQ(dc->SpanAtLevel(from, i, to), expect)
              << "from " << from << " idx " << i << " to " << to;
        }
      }
    }
  }
}

TEST_P(ChunkPropertyTest, GridsTileAndSourceBoxesCover) {
  Random rng(GetParam() * 1000 + 2);
  for (int iter = 0; iter < 10; ++iter) {
    // Random schema with 2-3 small dimensions, so exhaustive checks stay
    // cheap.
    const uint32_t num_dims = 2 + static_cast<uint32_t>(rng.Uniform(2));
    std::vector<Dimension> dims;
    for (uint32_t d = 0; d < num_dims; ++d) {
      const uint32_t depth = 1 + static_cast<uint32_t>(rng.Uniform(3));
      dims.push_back(
          Dimension{"X" + std::to_string(d), RandomHierarchy(rng, depth)});
    }
    auto schema = std::make_unique<StarSchema>("F", std::move(dims), "m");
    ChunkingOptions opts;
    opts.range_fraction = 0.2 + rng.NextDouble() * 0.6;
    auto scheme_or = ChunkingScheme::Build(schema.get(), opts, 1000);
    ASSERT_TRUE(scheme_or.ok());
    const ChunkingScheme& scheme = *scheme_or;

    // Pick a random group-by and a random finer source group-by.
    GroupBySpec target, source;
    target.num_dims = source.num_dims = num_dims;
    for (uint32_t d = 0; d < num_dims; ++d) {
      const uint32_t depth = schema->dimension(d).hierarchy.depth();
      target.levels[d] = static_cast<uint8_t>(rng.Uniform(depth + 1));
      source.levels[d] = static_cast<uint8_t>(
          target.levels[d] + rng.Uniform(depth - target.levels[d] + 1));
    }

    // P4: cells map into chunks whose extents contain them; extents tile.
    const ChunkGrid& grid = scheme.GridFor(target);
    uint64_t cells_total = 1;
    for (uint32_t d = 0; d < num_dims; ++d) {
      cells_total *=
          schema->dimension(d).hierarchy.LevelCardinality(target.levels[d]);
    }
    uint64_t extent_cells = 0;
    for (uint64_t c = 0; c < grid.num_chunks(); ++c) {
      auto extent = scheme.ChunkExtent(target, c);
      uint64_t vol = 1;
      for (uint32_t d = 0; d < num_dims; ++d) vol *= extent[d].size();
      extent_cells += vol;
    }
    ASSERT_EQ(extent_cells, cells_total);
    for (int probe = 0; probe < 20; ++probe) {
      ChunkCoords cell{};
      for (uint32_t d = 0; d < num_dims; ++d) {
        cell[d] = static_cast<uint32_t>(rng.Uniform(
            schema->dimension(d).hierarchy.LevelCardinality(
                target.levels[d])));
      }
      const uint64_t c = scheme.ChunkOfCell(target, cell);
      auto extent = scheme.ChunkExtent(target, c);
      for (uint32_t d = 0; d < num_dims; ++d) {
        ASSERT_TRUE(extent[d].Contains(cell[d]));
      }
    }

    // P5: SourceBox covers exactly the target chunk's base cells, and the
    // source boxes of all chunks tile the source grid.
    const ChunkGrid& source_grid = scheme.GridFor(source);
    std::set<uint64_t> source_seen;
    for (uint64_t c = 0; c < grid.num_chunks(); ++c) {
      auto box = scheme.SourceBox(target, c, source);
      ASSERT_TRUE(box.ok());
      box->ForEach(source_grid, [&](uint64_t num, const ChunkCoords&) {
        // Disjointness across targets.
        ASSERT_TRUE(source_seen.insert(num).second)
            << "source chunk " << num << " claimed twice";
      });
      // Extent containment: every source chunk's base extent lies within
      // the target chunk's base extent.
      auto target_extent = scheme.ChunkExtent(target, c);
      box->ForEach(source_grid, [&](uint64_t num, const ChunkCoords&) {
        auto source_extent = scheme.ChunkExtent(source, num);
        for (uint32_t d = 0; d < num_dims; ++d) {
          const auto& h = schema->dimension(d).hierarchy;
          const OrdinalRange tb =
              h.BaseRangeOf(target.levels[d], target_extent[d]);
          const OrdinalRange sb =
              h.BaseRangeOf(source.levels[d], source_extent[d]);
          ASSERT_GE(sb.begin, tb.begin);
          ASSERT_LE(sb.end, tb.end);
        }
      });
    }
    ASSERT_EQ(source_seen.size(), source_grid.num_chunks());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace chunkcache::chunks
