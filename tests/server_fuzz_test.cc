// Protocol fuzzing: the frame parser and every payload decoder are fed
// truncated (every byte offset), bit-flipped, oversized, and garbage
// inputs — first in-process against FrameReader/wire decoders, then over
// live sockets against a running server. The server must answer an error
// frame or close the connection cleanly; it must never crash, hang, or
// leak (this test runs under ASAN and TSAN in CI), and it must keep
// serving valid clients afterwards.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/middle_tier.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/server.h"
#include "server/wire.h"

namespace chunkcache::server {
namespace {

using backend::StarJoinQuery;

StarJoinQuery SampleQuery() {
  StarJoinQuery q;
  q.group_by.num_dims = 4;
  for (uint32_t d = 0; d < 4; ++d) {
    q.group_by.levels[d] = 1;
    q.selection[d] = schema::OrdinalRange{d, d + 2};
  }
  backend::NonGroupByPredicate pred;
  pred.dim = 1;
  pred.level = 2;
  pred.range = schema::OrdinalRange{0, 4};
  q.non_group_by.push_back(pred);
  return q;
}

std::vector<uint8_t> ValidQueryFrame() {
  FrameHeader h;
  h.type = FrameType::kQuery;
  h.flags = kFlagLast;
  h.tenant_id = 1;
  h.request_id = 77;
  std::vector<uint8_t> payload;
  wire::EncodeQuery(SampleQuery(), &payload);
  std::vector<uint8_t> bytes;
  EncodeFrame(h, payload.data(), payload.size(), &bytes);
  return bytes;
}

/// Trivial tier so the live-socket fuzz runs without a cache stack.
class FixedTier : public core::MiddleTier {
 public:
  Result<std::vector<backend::ResultRow>> Execute(
      const StarJoinQuery& query, core::QueryStats* stats) override {
    (void)query;
    (void)stats;
    std::vector<backend::ResultRow> rows(4);
    for (size_t i = 0; i < rows.size(); ++i) rows[i].count = i + 1;
    return rows;
  }
  std::string name() const override { return "fixed"; }
};

// ----------------------------- parser-level ---------------------------------

TEST(FrameFuzzTest, TruncationAtEveryByteOffsetNeverYieldsAFrame) {
  const std::vector<uint8_t> bytes = ValidQueryFrame();
  for (size_t len = 0; len < bytes.size(); ++len) {
    FrameReader reader(1 << 16);
    reader.Append(bytes.data(), len);
    auto got = reader.Next();
    if (got.ok()) {
      EXPECT_FALSE(got->has_value()) << "frame completed from " << len
                                     << " of " << bytes.size() << " bytes";
    }
    // Error (e.g. nothing — prefixes of a valid frame parse as incomplete)
    // or incomplete are both fine; the invariant is no crash and no frame.
  }
}

TEST(FrameFuzzTest, EveryBitFlipEitherErrorsOrParsesNeverCrashes) {
  const std::vector<uint8_t> bytes = ValidQueryFrame();
  size_t parsed = 0, rejected = 0;
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = bytes;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      FrameReader reader(1 << 16);
      reader.Append(mutated.data(), mutated.size());
      auto got = reader.Next();
      if (!got.ok()) {
        ++rejected;
        continue;
      }
      if (!got->has_value()) continue;  // flip grew payload_len: incomplete
      ++parsed;
      // Unprotected header fields (type/flags/ids) may flip and still
      // parse; the payload decoders must then hold the line.
      const Frame& f = **got;
      auto q = wire::DecodeQuery(f.payload.data(), f.payload.size());
      (void)q;  // any outcome is fine; ASAN checks the memory discipline
    }
  }
  // CRC + magic + length checks must reject at least every payload flip.
  EXPECT_GT(rejected, bytes.size() * 8 / 2);
  EXPECT_GT(parsed, 0u);  // header-field flips outside magic/version/len/crc
}

TEST(FrameFuzzTest, OversizedDeclaredLengthRejectedWithoutAllocation) {
  // Hand-craft a header claiming a 3.5 GiB payload.
  std::vector<uint8_t> bytes;
  PutU32(&bytes, kFrameMagic);
  bytes.push_back(kProtocolVersion);
  bytes.push_back(static_cast<uint8_t>(FrameType::kQuery));
  PutU16(&bytes, kFlagLast);
  PutU32(&bytes, 1);           // tenant
  PutU32(&bytes, 0);           // deadline
  PutU64(&bytes, 9);           // request id
  PutU32(&bytes, 0xE0000000u); // payload_len: 3.5 GiB
  PutU32(&bytes, 0);           // crc
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
  FrameReader reader(1 << 20);
  reader.Append(bytes.data(), bytes.size());
  auto got = reader.Next();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
}

TEST(FrameFuzzTest, SeededGarbageStreamsNeverCrashTheParser) {
  Random rng(2024);
  for (int round = 0; round < 64; ++round) {
    FrameReader reader(1 << 16);
    std::vector<uint8_t> garbage(1 + rng.Uniform(512));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next64());
    // Occasionally lead with valid magic so parsing goes deeper.
    if (round % 4 == 0 && garbage.size() >= 5) {
      garbage[0] = 0x43;
      garbage[1] = 0x4B;
      garbage[2] = 0x48;
      garbage[3] = 0x43;
      garbage[4] = kProtocolVersion;
    }
    size_t off = 0;
    while (off < garbage.size()) {
      const size_t n =
          std::min<size_t>(1 + rng.Uniform(64), garbage.size() - off);
      reader.Append(garbage.data() + off, n);
      off += n;
      for (int i = 0; i < 4; ++i) {
        auto got = reader.Next();
        if (!got.ok() || !got->has_value()) break;
      }
    }
  }
}

TEST(WireFuzzTest, DecodersSurviveSeededRandomBuffers) {
  Random rng(7);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> buf(rng.Uniform(256));
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next64());
    (void)wire::DecodeQuery(buf.data(), buf.size());
    std::vector<backend::ResultRow> rows;
    (void)wire::DecodeRowBatch(buf.data(), buf.size(), &rows);
    (void)wire::DecodeDone(buf.data(), buf.size());
    Status remote;
    (void)wire::DecodeError(buf.data(), buf.size(), &remote);
  }
}

TEST(WireFuzzTest, TruncatedValidPayloadsErrorAtEveryOffset) {
  std::vector<uint8_t> query;
  wire::EncodeQuery(SampleQuery(), &query);
  std::vector<backend::ResultRow> rows(5);
  std::vector<uint8_t> batch;
  wire::EncodeRowBatch(rows, 0, rows.size(), &batch);
  std::vector<uint8_t> done;
  wire::EncodeDone(wire::DoneSummary{}, &done);
  std::vector<uint8_t> error;
  wire::EncodeError(Status::Internal("x"), &error);

  for (size_t len = 0; len < query.size(); ++len) {
    EXPECT_FALSE(wire::DecodeQuery(query.data(), len).ok());
  }
  for (size_t len = 0; len < batch.size(); ++len) {
    std::vector<backend::ResultRow> sink;
    EXPECT_FALSE(wire::DecodeRowBatch(batch.data(), len, &sink).ok());
  }
  for (size_t len = 0; len < done.size(); ++len) {
    EXPECT_FALSE(wire::DecodeDone(done.data(), len).ok());
  }
  for (size_t len = 0; len < error.size(); ++len) {
    Status remote;
    EXPECT_FALSE(wire::DecodeError(error.data(), len, &remote).ok());
  }
}

// ------------------------------ live sockets --------------------------------

class LiveFuzzFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions opts;
    opts.num_workers = 2;
    opts.max_payload_bytes = 1 << 16;
    server_ = std::make_unique<ChunkServer>(&tier_, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<ChunkClient> NewClient() {
    ClientOptions copts;
    copts.port = server_->port();
    copts.tenant_id = 1;
    copts.recv_timeout_ms = 5000;
    auto client = ChunkClient::Connect(copts);
    EXPECT_TRUE(client.ok());
    return std::move(*client);
  }

  /// The health check after every attack: a fresh client gets real service.
  void ExpectStillServing() {
    auto client = NewClient();
    auto resp = client->Execute(SampleQuery());
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_TRUE(resp->status.ok());
    EXPECT_EQ(resp->rows.size(), 4u);
  }

  FixedTier tier_;
  std::unique_ptr<ChunkServer> server_;
};

TEST_F(LiveFuzzFixture, TruncatedFrameAtEveryOffsetThenDisconnect) {
  const std::vector<uint8_t> bytes = ValidQueryFrame();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto client = NewClient();
    if (len > 0) ASSERT_TRUE(client->SendRaw(bytes.data(), len).ok());
    if (len % 2 == 0) {
      client->CloseAbruptly();  // RST with a half-frame buffered
    }
    // else: orderly close via destructor — server sees EOF mid-frame.
  }
  ExpectStillServing();
}

TEST_F(LiveFuzzFixture, BitFlippedFramesPerByteAnswerOrClose) {
  const std::vector<uint8_t> bytes = ValidQueryFrame();
  Random rng(31);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    std::vector<uint8_t> mutated = bytes;
    mutated[byte] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    auto client = NewClient();
    ASSERT_TRUE(client->SendRaw(mutated.data(), mutated.size()).ok());
    // Whatever happens — error frame, response to a reinterpreted header,
    // or connection close — the client must observe *something* terminal
    // rather than a wedged server: ping on a fresh connection stays fast.
    auto fresh = NewClient();
    ASSERT_TRUE(fresh->Ping().ok()) << "server wedged after flipping byte "
                                    << byte;
  }
  ExpectStillServing();
}

TEST_F(LiveFuzzFixture, OversizedFrameClosedWithoutBufferingIt) {
  std::vector<uint8_t> header;
  PutU32(&header, kFrameMagic);
  header.push_back(kProtocolVersion);
  header.push_back(static_cast<uint8_t>(FrameType::kQuery));
  PutU16(&header, kFlagLast);
  PutU32(&header, 1);
  PutU32(&header, 0);
  PutU64(&header, 5);
  PutU32(&header, 0xE0000000u);  // declares 3.5 GiB
  PutU32(&header, 0);
  auto client = NewClient();
  ASSERT_TRUE(client->SendRaw(header.data(), header.size()).ok());
  // The server answers one error frame (best-effort) and closes; either
  // way this connection is done and the server has buffered ~nothing.
  ExpectStillServing();
  const auto snap = server_->metrics().TakeSnapshot();
  EXPECT_GE(snap.counter("server.frames.bad"), 1u);
}

TEST_F(LiveFuzzFixture, GarbageStreamsClosedCleanly) {
  Random rng(99);
  for (int round = 0; round < 32; ++round) {
    auto client = NewClient();
    std::vector<uint8_t> garbage(64 + rng.Uniform(4096));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next64());
    (void)client->SendRaw(garbage.data(), garbage.size());
  }
  ExpectStillServing();
  const auto snap = server_->metrics().TakeSnapshot();
  EXPECT_GE(snap.counter("server.frames.bad"), 1u);
  // Garbage never counts as offered work: the shed/ok/error books only
  // track well-formed query frames.
  EXPECT_EQ(snap.counter("server.queries.offered"),
            snap.counter("server.queries.ok") +
                snap.counter("server.queries.shed") +
                snap.counter("server.queries.errors"));
}

TEST_F(LiveFuzzFixture, InterleavedAttacksAndValidTraffic) {
  Random rng(4242);
  const std::vector<uint8_t> valid = ValidQueryFrame();
  for (int round = 0; round < 40; ++round) {
    switch (rng.Uniform(4)) {
      case 0: {  // truncated frame, abrupt close
        auto c = NewClient();
        (void)c->SendRaw(valid.data(), 1 + rng.Uniform(valid.size() - 1));
        c->CloseAbruptly();
        break;
      }
      case 1: {  // corrupted payload byte (CRC must catch it)
        auto c = NewClient();
        std::vector<uint8_t> m = valid;
        m[kFrameHeaderBytes + rng.Uniform(m.size() - kFrameHeaderBytes)] ^= 1;
        (void)c->SendRaw(m.data(), m.size());
        break;
      }
      case 2: {  // pure garbage
        auto c = NewClient();
        std::vector<uint8_t> g(128);
        for (auto& b : g) b = static_cast<uint8_t>(rng.Next64());
        (void)c->SendRaw(g.data(), g.size());
        break;
      }
      default: {  // honest client gets honest service, mid-melee
        auto c = NewClient();
        auto resp = c->Execute(SampleQuery());
        ASSERT_TRUE(resp.ok());
        EXPECT_TRUE(resp->status.ok());
        break;
      }
    }
  }
  ExpectStillServing();
}

}  // namespace
}  // namespace chunkcache::server
