// Serving-layer tests: frame and payload codec round trips, deterministic
// admission decisions against a synthetic clock, and end-to-end protocol
// behavior over real sockets — bit-identity of served results against
// in-process execution (compression on and off, forced multi-frame
// streaming), deadline propagation into ExecControl, shed semantics,
// metrics dumps, and a tier2 kill/reconnect churn storm. Runs under TSAN
// and ASAN in CI (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "core/chunk_cache_manager.h"
#include "schema/synthetic.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/server.h"
#include "server/wire.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/session_generator.h"

namespace chunkcache::server {
namespace {

using backend::StarJoinQuery;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;

uint64_t StormIters(uint64_t dflt) {
  const char* env = std::getenv("CHUNKCACHE_STORM_ITERS");
  if (env == nullptr) return dflt;
  return std::max<uint64_t>(1, std::strtoull(env, nullptr, 10));
}

StarJoinQuery SampleQuery() {
  StarJoinQuery q;
  q.group_by.num_dims = 4;
  for (uint32_t d = 0; d < 4; ++d) {
    q.group_by.levels[d] = static_cast<uint8_t>(1 + (d % 2));
    q.selection[d] = schema::OrdinalRange{d, d + 3};
  }
  backend::NonGroupByPredicate pred;
  pred.dim = 2;
  pred.level = 2;
  pred.range = schema::OrdinalRange{5, 9};
  q.non_group_by.push_back(pred);
  return q;
}

// ------------------------------- framing ------------------------------------

TEST(FrameTest, RoundTripsThroughByteAtATimeReader) {
  FrameHeader h;
  h.type = FrameType::kQuery;
  h.flags = kFlagLast;
  h.tenant_id = 7;
  h.deadline_ms = 1500;
  h.request_id = 0x1122334455667788ull;
  std::vector<uint8_t> payload;
  for (int i = 0; i < 300; ++i) payload.push_back(static_cast<uint8_t>(i));
  std::vector<uint8_t> bytes;
  EncodeFrame(h, payload.data(), payload.size(), &bytes);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());

  FrameReader reader(1 << 16);
  for (size_t i = 0; i < bytes.size(); ++i) {
    auto before = reader.Next();
    if (i < bytes.size()) {
      ASSERT_TRUE(before.ok());
      // No frame may complete before the last byte arrives.
      EXPECT_FALSE(before->has_value()) << "completed early at byte " << i;
    }
    reader.Append(&bytes[i], 1);
  }
  auto got = reader.Next();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  const Frame& f = **got;
  EXPECT_EQ(f.header.version, kProtocolVersion);
  EXPECT_EQ(f.header.type, FrameType::kQuery);
  EXPECT_EQ(f.header.flags, kFlagLast);
  EXPECT_EQ(f.header.tenant_id, 7u);
  EXPECT_EQ(f.header.deadline_ms, 1500u);
  EXPECT_EQ(f.header.request_id, 0x1122334455667788ull);
  EXPECT_EQ(f.payload, payload);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameTest, ParsesBackToBackFramesFromOneAppend) {
  std::vector<uint8_t> bytes;
  for (uint64_t id = 1; id <= 3; ++id) {
    FrameHeader h;
    h.type = FrameType::kPing;
    h.request_id = id;
    EncodeFrame(h, nullptr, 0, &bytes);
  }
  FrameReader reader(1 << 16);
  reader.Append(bytes.data(), bytes.size());
  for (uint64_t id = 1; id <= 3; ++id) {
    auto got = reader.Next();
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ((*got)->header.request_id, id);
  }
  auto empty = reader.Next();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
}

TEST(FrameTest, BadMagicPoisonsReader) {
  FrameHeader h;
  std::vector<uint8_t> bytes;
  EncodeFrame(h, nullptr, 0, &bytes);
  bytes[0] ^= 0xFF;
  FrameReader reader(1 << 16);
  reader.Append(bytes.data(), bytes.size());
  auto got = reader.Next();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  // Poisoned: even appending a pristine frame cannot resurrect the stream.
  std::vector<uint8_t> good;
  EncodeFrame(h, nullptr, 0, &good);
  reader.Append(good.data(), good.size());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameTest, OversizedDeclaredPayloadRejectedBeforeBuffering) {
  FrameHeader h;
  std::vector<uint8_t> payload(128, 0xAB);
  std::vector<uint8_t> bytes;
  EncodeFrame(h, payload.data(), payload.size(), &bytes);
  FrameReader reader(/*max_payload=*/64);
  // Header alone is enough to reject: no payload bytes appended yet.
  reader.Append(bytes.data(), kFrameHeaderBytes);
  auto got = reader.Next();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
}

TEST(FrameTest, PayloadCorruptionCaughtByCrc) {
  FrameHeader h;
  std::vector<uint8_t> payload(64, 0x5A);
  std::vector<uint8_t> bytes;
  EncodeFrame(h, payload.data(), payload.size(), &bytes);
  bytes[kFrameHeaderBytes + 10] ^= 0x01;
  FrameReader reader(1 << 16);
  reader.Append(bytes.data(), bytes.size());
  auto got = reader.Next();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

// ----------------------------- wire payloads --------------------------------

TEST(WireTest, QueryRoundTrips) {
  const StarJoinQuery q = SampleQuery();
  std::vector<uint8_t> bytes;
  wire::EncodeQuery(q, &bytes);
  auto got = wire::DecodeQuery(bytes.data(), bytes.size());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got == q);
}

TEST(WireTest, QueryDecodeRejectsStructuralLies) {
  const StarJoinQuery q = SampleQuery();
  std::vector<uint8_t> bytes;
  wire::EncodeQuery(q, &bytes);

  // Truncation at every boundary fails cleanly.
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto got = wire::DecodeQuery(bytes.data(), len);
    EXPECT_FALSE(got.ok()) << "accepted a " << len << "-byte prefix";
  }
  // Trailing garbage is not tolerated either.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(wire::DecodeQuery(padded.data(), padded.size()).ok());
  // A predicate count far beyond the payload must not allocate.
  std::vector<uint8_t> lying = bytes;
  const size_t npred_off = 4 + 4 /*levels*/ + 4 * 8 /*selection*/;
  lying[npred_off] = 0xFF;
  lying[npred_off + 1] = 0xFF;
  lying[npred_off + 2] = 0xFF;
  lying[npred_off + 3] = 0xFF;
  EXPECT_FALSE(wire::DecodeQuery(lying.data(), lying.size()).ok());
}

TEST(WireTest, RowBatchAndHashRoundTrip) {
  std::vector<backend::ResultRow> rows;
  for (uint32_t i = 0; i < 10; ++i) {
    backend::ResultRow r{};
    for (uint32_t d = 0; d < storage::kMaxDims; ++d) r.coords[d] = i + d;
    r.sum = 1.5 * i;
    r.count = i;
    r.min_v = -static_cast<double>(i);
    r.max_v = i;
    rows.push_back(r);
  }
  std::vector<uint8_t> bytes;
  wire::EncodeRowBatch(rows, 0, rows.size(), &bytes);
  std::vector<backend::ResultRow> got;
  ASSERT_TRUE(wire::DecodeRowBatch(bytes.data(), bytes.size(), &got).ok());
  EXPECT_EQ(wire::HashRows(got), wire::HashRows(rows));
  // The hash is order-sensitive: swapping two rows changes it.
  std::swap(got[0], got[1]);
  EXPECT_NE(wire::HashRows(got), wire::HashRows(rows));
  // Count/size mismatch is rejected.
  std::vector<backend::ResultRow> sink;
  EXPECT_FALSE(
      wire::DecodeRowBatch(bytes.data(), bytes.size() - 1, &sink).ok());
}

TEST(WireTest, ErrorRoundTripsStatusCode) {
  std::vector<uint8_t> bytes;
  wire::EncodeError(Status::ResourceExhausted("query shed: shed-rate"),
                    &bytes);
  Status remote;
  ASSERT_TRUE(wire::DecodeError(bytes.data(), bytes.size(), &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(remote.message(), "query shed: shed-rate");
}

// ------------------------------- admission ----------------------------------

TEST(AdmissionTest, RateLimitIsDeterministicUnderSyntheticClock) {
  MetricsRegistry metrics;
  AdmissionOptions opts;
  opts.default_quota.rate_qps = 10;  // one token per 100 ms
  opts.default_quota.burst = 2;
  AdmissionController adm(opts, &metrics);

  // Burst of 2 admits, third sheds, 100 ms later one more token exists.
  EXPECT_EQ(adm.TryAdmit(1, 0), AdmitDecision::kAdmitted);
  EXPECT_EQ(adm.TryAdmit(1, 0), AdmitDecision::kAdmitted);
  EXPECT_EQ(adm.TryAdmit(1, 0), AdmitDecision::kShedRate);
  EXPECT_EQ(adm.TryAdmit(1, 100'000'000), AdmitDecision::kAdmitted);
  EXPECT_EQ(adm.TryAdmit(1, 100'000'000), AdmitDecision::kShedRate);

  // Tenants are isolated: tenant 2's bucket is untouched by tenant 1.
  EXPECT_EQ(adm.TryAdmit(2, 100'000'000), AdmitDecision::kAdmitted);

  const auto snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.counter("server.admission.admitted"), 4u);
  EXPECT_EQ(snap.counter("server.admission.shed_rate"), 2u);
  EXPECT_EQ(snap.counter("server.tenant.1.admitted"), 3u);
  EXPECT_EQ(snap.counter("server.tenant.1.shed"), 2u);
  EXPECT_EQ(snap.counter("server.tenant.2.admitted"), 1u);
}

TEST(AdmissionTest, ShedDoesNotConsumeTokens) {
  MetricsRegistry metrics;
  AdmissionOptions opts;
  opts.default_quota.rate_qps = 10;
  opts.default_quota.burst = 1;
  opts.default_quota.max_inflight = 1;
  AdmissionController adm(opts, &metrics);

  EXPECT_EQ(adm.TryAdmit(1, 0), AdmitDecision::kAdmitted);
  // Shed on the inflight cap, repeatedly — must not drain the bucket.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(adm.TryAdmit(1, 100'000'000), AdmitDecision::kShedTenantInflight);
  }
  adm.Release(1);
  // The 100 ms token survived all those sheds.
  EXPECT_EQ(adm.TryAdmit(1, 100'000'000), AdmitDecision::kAdmitted);
}

TEST(AdmissionTest, GlobalCapChecksBeforeTenantState) {
  MetricsRegistry metrics;
  AdmissionOptions opts;
  opts.global_max_inflight = 2;
  AdmissionController adm(opts, &metrics);
  EXPECT_EQ(adm.TryAdmit(1, 0), AdmitDecision::kAdmitted);
  EXPECT_EQ(adm.TryAdmit(2, 0), AdmitDecision::kAdmitted);
  EXPECT_EQ(adm.TryAdmit(3, 0), AdmitDecision::kShedGlobalInflight);
  EXPECT_EQ(adm.global_inflight(), 2u);
  adm.Release(1);
  EXPECT_EQ(adm.TryAdmit(3, 0), AdmitDecision::kAdmitted);
}

TEST(AdmissionTest, PerTenantQuotaOverridesDefault) {
  MetricsRegistry metrics;
  AdmissionOptions opts;
  opts.default_quota.max_inflight = 1;
  opts.tenant_quotas[9].max_inflight = 3;
  AdmissionController adm(opts, &metrics);
  EXPECT_EQ(adm.TryAdmit(9, 0), AdmitDecision::kAdmitted);
  EXPECT_EQ(adm.TryAdmit(9, 0), AdmitDecision::kAdmitted);
  EXPECT_EQ(adm.TryAdmit(9, 0), AdmitDecision::kAdmitted);
  EXPECT_EQ(adm.TryAdmit(9, 0), AdmitDecision::kShedTenantInflight);
  EXPECT_EQ(adm.TryAdmit(1, 0), AdmitDecision::kAdmitted);
  EXPECT_EQ(adm.TryAdmit(1, 0), AdmitDecision::kShedTenantInflight);
}

// --------------------------- stub-tier fixture ------------------------------

/// Deterministic MiddleTier stub: rows are a pure function of the query,
/// service time and deadline behavior are controllable. Protocol tests use
/// this so they exercise the server, not the cache.
class StubTier : public core::MiddleTier {
 public:
  Result<std::vector<backend::ResultRow>> Execute(const StarJoinQuery& query,
                                                  QueryStats* stats) override {
    return ExecuteWithControl(query, stats, ExecControl{});
  }

  Result<std::vector<backend::ResultRow>> ExecuteWithControl(
      const StarJoinQuery& query, QueryStats* stats,
      const ExecControl& ctrl) override {
    calls.fetch_add(1);
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(service_ms.load())) {
      Status st = ctrl.Check();
      if (!st.ok()) return st;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Status st = ctrl.Check();
    if (!st.ok()) return st;
    std::vector<backend::ResultRow> rows(rows_per_query.load());
    uint64_t h = 0x9E3779B97F4A7C15ull;
    for (uint32_t d = 0; d < query.group_by.num_dims; ++d) {
      h = (h ^ query.selection[d].begin) * 0x100000001b3ull;
      h = (h ^ query.selection[d].end) * 0x100000001b3ull;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      for (uint32_t d = 0; d < storage::kMaxDims; ++d) {
        rows[i].coords[d] = static_cast<uint32_t>(h >> (4 * d)) + i;
      }
      rows[i].sum = static_cast<double>(h % 1000) + i;
      rows[i].count = i + 1;
      rows[i].min_v = -static_cast<double>(i);
      rows[i].max_v = static_cast<double>(i);
    }
    stats->chunks_needed = 1;
    stats->chunks_from_backend = 1;
    return rows;
  }

  std::string name() const override { return "stub"; }

  std::atomic<uint64_t> calls{0};
  std::atomic<uint32_t> service_ms{0};
  std::atomic<uint32_t> rows_per_query{8};
};

class ServerFixture : public ::testing::Test {
 protected:
  void StartServer(ServerOptions opts) {
    server_ = std::make_unique<ChunkServer>(&tier_, std::move(opts));
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<ChunkClient> NewClient(uint32_t tenant = 1) {
    ClientOptions copts;
    copts.port = server_->port();
    copts.tenant_id = tenant;
    auto client = ChunkClient::Connect(copts);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// offered == ok + shed + errors, read from the server registry.
  void ExpectExactAccounting() {
    const auto snap = server_->metrics().TakeSnapshot();
    EXPECT_EQ(snap.counter("server.queries.offered"),
              snap.counter("server.queries.ok") +
                  snap.counter("server.queries.shed") +
                  snap.counter("server.queries.errors"));
  }

  StubTier tier_;
  std::unique_ptr<ChunkServer> server_;
};

TEST_F(ServerFixture, PingAndMetricsDump) {
  StartServer(ServerOptions{});
  auto client = NewClient();
  ASSERT_TRUE(client->Ping().ok());
  auto metrics = client->FetchMetrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("server.queries.offered"), std::string::npos);
  EXPECT_NE(metrics->find("server.frames.received"), std::string::npos);
}

TEST_F(ServerFixture, QueryStreamsRowsAndVerifiesHash) {
  ServerOptions opts;
  // 3 rows per kResultBatch frame: an 8-row response streams in 3 frames.
  opts.result_batch_bytes = 3 * wire::kRowBytes + 4;
  StartServer(opts);
  auto client = NewClient();
  auto resp = client->Execute(SampleQuery());
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->status.ok()) << resp->status.ToString();
  EXPECT_EQ(resp->rows.size(), 8u);
  EXPECT_EQ(resp->summary.total_rows, 8u);
  EXPECT_EQ(resp->summary.row_hash, wire::HashRows(resp->rows));
  const auto snap = server_->metrics().TakeSnapshot();
  EXPECT_EQ(snap.counter("server.result.frames"), 3u);
  EXPECT_EQ(snap.counter("server.result.rows"), 8u);
  ExpectExactAccounting();
}

TEST_F(ServerFixture, PipelinedRequestsDemuxByRequestId) {
  StartServer(ServerOptions{});
  auto client = NewClient();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    StarJoinQuery q = SampleQuery();
    q.selection[0].begin = i;  // distinct rows per request
    q.selection[0].end = i + 3;
    auto id = client->SendQuery(q);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Wait out of order: responses stash and resolve by id.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    auto resp = client->WaitResponse(*it);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->request_id, *it);
    EXPECT_TRUE(resp->status.ok());
    EXPECT_EQ(resp->rows.size(), 8u);
  }
  ExpectExactAccounting();
}

TEST_F(ServerFixture, DeadlinePropagatesIntoExecControl) {
  StartServer(ServerOptions{});
  tier_.service_ms.store(10'000);  // would run 10 s without a deadline
  auto client = NewClient();
  auto resp = client->Execute(SampleQuery(), /*deadline_ms=*/50);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(resp->shed);  // an expired deadline is not an admission shed
  const auto snap = server_->metrics().TakeSnapshot();
  EXPECT_EQ(snap.counter("server.queries.deadline_exceeded"), 1u);
  EXPECT_EQ(snap.counter("server.queries.errors"), 1u);
  ExpectExactAccounting();
}

TEST_F(ServerFixture, ServerDeadlineCapAppliesToUnboundedQueries) {
  ServerOptions opts;
  opts.max_deadline_ms = 50;  // every query gets at most 50 ms
  StartServer(opts);
  tier_.service_ms.store(10'000);
  auto client = NewClient();
  auto resp = client->Execute(SampleQuery(), /*deadline_ms=*/0);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ServerFixture, RateShedIsExplicitResourceExhausted) {
  ServerOptions opts;
  opts.admission.default_quota.rate_qps = 0.001;  // one token per ~17 min
  opts.admission.default_quota.burst = 1;
  StartServer(opts);
  auto client = NewClient();

  auto first = client->Execute(SampleQuery());
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->status.ok());

  auto second = client->Execute(SampleQuery());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(second->shed);
  EXPECT_NE(second->status.message().find("shed"), std::string::npos);

  // The shed did not execute: the tier saw exactly one call.
  EXPECT_EQ(tier_.calls.load(), 1u);
  const auto snap = server_->metrics().TakeSnapshot();
  EXPECT_EQ(snap.counter("server.queries.shed"), 1u);
  ExpectExactAccounting();
}

TEST_F(ServerFixture, MalformedQueryPayloadAnswersErrorAndKeepsConnection) {
  StartServer(ServerOptions{});
  auto client = NewClient();

  // A syntactically valid frame whose payload is not a query.
  FrameHeader h;
  h.type = FrameType::kQuery;
  h.flags = kFlagLast;
  h.tenant_id = 1;
  h.request_id = 12345;
  const uint8_t junk[] = {0xDE, 0xAD, 0xBE, 0xEF};
  std::vector<uint8_t> bytes;
  EncodeFrame(h, junk, sizeof(junk), &bytes);
  ASSERT_TRUE(client->SendRaw(bytes.data(), bytes.size()).ok());
  auto resp = client->WaitResponse(12345);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->status.ok());

  // Same connection still serves real queries.
  auto good = client->Execute(SampleQuery());
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->status.ok());
  ExpectExactAccounting();
}

TEST_F(ServerFixture, ClientVanishingMidQueryStillCountsAnOutcome) {
  StartServer(ServerOptions{});
  tier_.service_ms.store(150);
  auto client = NewClient();
  ASSERT_TRUE(client->SendQuery(SampleQuery()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client->CloseAbruptly();  // RST while the query executes

  // The connection's cancellation fails the query into `errors`; poll the
  // registry until the worker finishes (bounded wait).
  for (int i = 0; i < 200; ++i) {
    const auto snap = server_->metrics().TakeSnapshot();
    if (snap.counter("server.queries.ok") +
            snap.counter("server.queries.errors") ==
        snap.counter("server.queries.offered")) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ExpectExactAccounting();
  // And the server is still healthy for new clients.
  tier_.service_ms.store(0);
  auto fresh = NewClient();
  auto resp = fresh->Execute(SampleQuery());
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->status.ok());
}

TEST_F(ServerFixture, StopCancelsInflightQueries) {
  StartServer(ServerOptions{});
  tier_.service_ms.store(5'000);
  auto client = NewClient();
  ASSERT_TRUE(client->SendQuery(SampleQuery()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto start = std::chrono::steady_clock::now();
  server_->Stop();  // must not wait out the 5 s service time
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  ExpectExactAccounting();
}

// ------------------------- kill/reconnect churn storm ------------------------

/// Tier2 storm (serving_storm in ctest): clients connect, pipeline a few
/// queries, and die — half abruptly (RST mid-response), half cleanly —
/// while a stable client keeps verifying correct service throughout.
TEST_F(ServerFixture, ServingStorm) {
  ServerOptions opts;
  opts.num_workers = 4;
  StartServer(opts);
  tier_.service_ms.store(2);
  const uint64_t rounds = StormIters(1) * 20;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> stable_ok{0};
  std::thread stable([&] {
    auto client = NewClient(/*tenant=*/42);
    while (!stop.load()) {
      auto resp = client->Execute(SampleQuery());
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp->status.ok());
      ASSERT_EQ(resp->summary.row_hash, wire::HashRows(resp->rows));
      stable_ok.fetch_add(1);
    }
  });

  std::vector<std::thread> churn;
  for (int t = 0; t < 4; ++t) {
    churn.emplace_back([&, t] {
      for (uint64_t r = 0; r < rounds; ++r) {
        auto client = NewClient(/*tenant=*/static_cast<uint32_t>(t));
        for (int q = 0; q < 3; ++q) {
          if (!client->SendQuery(SampleQuery()).ok()) break;
        }
        if ((r + t) % 2 == 0) {
          client->CloseAbruptly();  // RST with responses in flight
        }
        // else: destructor closes cleanly with unread responses buffered.
      }
    });
  }
  for (auto& th : churn) th.join();
  stop.store(true);
  stable.join();
  EXPECT_GT(stable_ok.load(), 0u);

  // Drain stragglers, then the books must balance exactly.
  for (int i = 0; i < 500; ++i) {
    const auto snap = server_->metrics().TakeSnapshot();
    if (snap.counter("server.queries.offered") ==
        snap.counter("server.queries.ok") +
            snap.counter("server.queries.shed") +
            snap.counter("server.queries.errors")) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ExpectExactAccounting();

  // And the server still serves a fresh connection.
  auto fresh = NewClient();
  auto resp = fresh->Execute(SampleQuery());
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->status.ok());
}

// --------------------------- real-tier bit-identity --------------------------

/// Served results must be bit-identical to in-process MiddleTier::Execute —
/// including multi-frame streamed responses and the compressed cache tier.
class BitIdentityFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 6000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    chunks::ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = chunks::ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ =
        std::make_unique<chunks::ChunkingScheme>(std::move(scheme).value());

    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 17;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);

    pool_ = std::make_unique<storage::BufferPool>(&disk_, 4096);
    auto file =
        backend::ChunkedFile::BulkLoad(pool_.get(), scheme_.get(), tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(
        pool_.get(), file_.get(), scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  void RunServedVsDirect(bool compression) {
    ChunkManagerOptions mopts;
    mopts.num_workers = 2;
    mopts.cache_shards = 4;
    mopts.enable_compression = compression;
    ChunkCacheManager direct_mgr(engine_.get(), mopts);
    ChunkCacheManager served_mgr(engine_.get(), mopts);

    ServerOptions sopts;
    // Tiny batches force every nontrivial response to stream multi-frame.
    sopts.result_batch_bytes = 2 * wire::kRowBytes + 4;
    sopts.num_workers = 2;
    ChunkServer server(&served_mgr, sopts);
    ASSERT_TRUE(server.Start().ok());

    ClientOptions copts;
    copts.port = server.port();
    copts.tenant_id = 3;
    auto client = ChunkClient::Connect(copts);
    ASSERT_TRUE(client.ok());

    // The seeded session stream both sides execute in the same order.
    workload::SessionOptions wopts;
    wopts.seed = 5;
    workload::SessionGenerator gen(schema_.get(), wopts);
    uint64_t multi_frame_responses = 0;
    for (int i = 0; i < 24; ++i) {
      const StarJoinQuery q = gen.Next();
      QueryStats direct_stats;
      auto direct = direct_mgr.Execute(q, &direct_stats);
      ASSERT_TRUE(direct.ok());

      auto resp = (*client)->Execute(q);
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp->status.ok()) << resp->status.ToString();
      // Hash equality is bit-identity over the full row stream (the client
      // already checked resp->rows against the server's kDone hash).
      ASSERT_EQ(wire::HashRows(resp->rows), wire::HashRows(*direct))
          << "query " << i << " diverged (compression=" << compression << ")";
      ASSERT_EQ(resp->rows.size(), direct->size());
      if (direct->size() > 2) ++multi_frame_responses;
    }
    EXPECT_GT(multi_frame_responses, 0u) << "streaming path never exercised";
    server.Stop();
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<chunks::ChunkingScheme> scheme_;
  std::vector<storage::Tuple> tuples_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

TEST_F(BitIdentityFixture, ServedEqualsDirectUncompressed) {
  RunServedVsDirect(/*compression=*/false);
}

TEST_F(BitIdentityFixture, ServedEqualsDirectCompressed) {
  RunServedVsDirect(/*compression=*/true);
}

}  // namespace
}  // namespace chunkcache::server
