// Model-based randomized testing of the replacement policies: each policy
// is driven with a random insert/access/erase/evict trace and checked
// against policy-specific invariants (LRU against an exact reference
// implementation; the CLOCK variants against structural guarantees that
// must hold for any correct implementation).

#include <gtest/gtest.h>

#include <list>
#include <set>
#include <string>
#include <unordered_map>

#include "cache/replacement.h"
#include "common/random.h"

namespace chunkcache::cache {
namespace {

// Exact reference LRU.
class ReferenceLru {
 public:
  void Insert(uint64_t h) {
    order_.push_front(h);
    pos_[h] = order_.begin();
  }
  void Access(uint64_t h) {
    auto it = pos_.find(h);
    if (it == pos_.end()) return;
    order_.splice(order_.begin(), order_, it->second);
  }
  void Erase(uint64_t h) {
    auto it = pos_.find(h);
    if (it == pos_.end()) return;
    order_.erase(it->second);
    pos_.erase(it);
  }
  std::optional<uint64_t> Victim() const {
    if (order_.empty()) return std::nullopt;
    return order_.back();
  }
  size_t size() const { return pos_.size(); }

 private:
  std::list<uint64_t> order_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> pos_;
};

TEST(ReplacementModelTest, LruMatchesReferenceExactly) {
  for (uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    Random rng(seed);
    LruPolicy policy;
    ReferenceLru reference;
    std::set<uint64_t> live;
    uint64_t next = 0;
    for (int step = 0; step < 5000; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.4 || live.empty()) {
        const uint64_t h = next++;
        policy.OnInsert(h, 1.0);
        reference.Insert(h);
        live.insert(h);
      } else if (roll < 0.6) {
        // Access a random live handle.
        auto it = live.begin();
        std::advance(it, rng.Uniform(live.size()));
        policy.OnAccess(*it);
        reference.Access(*it);
      } else if (roll < 0.8) {
        auto it = live.begin();
        std::advance(it, rng.Uniform(live.size()));
        policy.OnErase(*it);
        reference.Erase(*it);
        live.erase(it);
      } else {
        const auto got = policy.PickVictim(1.0);
        const auto want = reference.Victim();
        ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
        if (got) {
          ASSERT_EQ(*got, *want) << "step " << step;
          // Evict it, as the cache would.
          policy.OnErase(*got);
          reference.Erase(*want);
          live.erase(*got);
        }
      }
      ASSERT_EQ(policy.size(), reference.size());
    }
  }
}

// Structural invariants every policy must satisfy under random traces:
// victims are live entries; size bookkeeping is exact; a policy never
// "loses" entries (every live entry is eventually evictable).
class AnyPolicyModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AnyPolicyModelTest, VictimsAreAlwaysLiveAndSizeIsExact) {
  auto policy = MakePolicy(GetParam());
  ASSERT_NE(policy, nullptr);
  Random rng(99);
  std::set<uint64_t> live;
  uint64_t next = 0;
  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.45 || live.empty()) {
      const uint64_t h = next++;
      policy->OnInsert(h, 1.0 + rng.NextDouble() * 100);
      live.insert(h);
    } else if (roll < 0.6) {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      policy->OnAccess(*it);
    } else if (roll < 0.75) {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      policy->OnErase(*it);
      live.erase(it);
    } else {
      auto victim = policy->PickVictim(1.0 + rng.NextDouble() * 10);
      ASSERT_EQ(victim.has_value(), !live.empty()) << "step " << step;
      if (victim) {
        ASSERT_TRUE(live.count(*victim)) << "dead victim at step " << step;
        policy->OnErase(*victim);
        live.erase(*victim);
      }
    }
    ASSERT_EQ(policy->size(), live.size()) << "step " << step;
  }
  // Drain: every remaining entry must be nominated eventually.
  while (!live.empty()) {
    auto victim = policy->PickVictim(1e9);
    ASSERT_TRUE(victim.has_value());
    ASSERT_TRUE(live.count(*victim));
    policy->OnErase(*victim);
    live.erase(*victim);
  }
  EXPECT_FALSE(policy->PickVictim(1.0).has_value());
}

INSTANTIATE_TEST_SUITE_P(Policies, AnyPolicyModelTest,
                         ::testing::ValuesIn(KnownPolicyNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Keyed variant of the same fuzz: drives OnInsertKeyed with a small,
// recurring key universe so ghost-listed policies (ARC, 2Q) exercise
// their re-admission paths, not just cold inserts.
class KeyedPolicyModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KeyedPolicyModelTest, KeyedReinsertionKeepsInvariants) {
  auto policy = MakePolicy(GetParam());
  ASSERT_NE(policy, nullptr);
  Random rng(4242);
  std::unordered_map<uint64_t, uint64_t> live;  // key -> handle
  uint64_t next_handle = 0;
  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.45 || live.empty()) {
      // Keys recur from a universe of 64: evicted keys come back with
      // fresh handles, exactly like a re-fetched chunk.
      const uint64_t key = rng.Uniform(64);
      if (live.count(key)) continue;  // the real cache would hit instead
      const uint64_t h = next_handle++;
      policy->OnInsertKeyed(h, key, 1.0 + rng.NextDouble() * 100);
      live[key] = h;
    } else if (roll < 0.6) {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      policy->OnAccess(it->second);
    } else {
      auto victim = policy->PickVictim(1.0 + rng.NextDouble() * 10);
      ASSERT_EQ(victim.has_value(), !live.empty()) << "step " << step;
      if (victim) {
        auto it = live.begin();
        for (; it != live.end(); ++it) {
          if (it->second == *victim) break;
        }
        ASSERT_NE(it, live.end()) << "dead victim at step " << step;
        policy->OnErase(*victim);
        live.erase(it);
      }
    }
    ASSERT_EQ(policy->size(), live.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, KeyedPolicyModelTest,
                         ::testing::ValuesIn(KnownPolicyNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(MakePolicyTest, KnownNamesConstructAndUnknownIsRejected) {
  for (const std::string& name : KnownPolicyNames()) {
    EXPECT_NE(MakePolicy(name), nullptr) << name;
  }
  EXPECT_EQ(MakePolicy("bogus"), nullptr);
  EXPECT_EQ(MakePolicy(""), nullptr);
  EXPECT_EQ(MakePolicy("LRU"), nullptr);  // names are case-sensitive
}

// Satellite regression: forcing ring compaction at arbitrary points must
// not change a CLOCK policy's eviction decisions. Two identical instances
// are driven by the same trace; one is compacted aggressively, and every
// victim choice must still agree.
class ClockCompactionTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ClockCompactionTest, CompactionPreservesEvictionOrder) {
  for (uint64_t seed : {11, 22, 33}) {
    auto plain = MakePolicy(GetParam());
    auto compacted = MakePolicy(GetParam());
    auto* compacted_clock = dynamic_cast<ClockBase*>(compacted.get());
    ASSERT_NE(compacted_clock, nullptr);
    Random rng(seed);
    std::set<uint64_t> live;
    uint64_t next = 0;
    for (int step = 0; step < 8000; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.4 || live.empty()) {
        const double benefit = 1.0 + rng.NextDouble() * 50;
        plain->OnInsert(next, benefit);
        compacted->OnInsert(next, benefit);
        live.insert(next);
        ++next;
      } else if (roll < 0.55) {
        auto it = live.begin();
        std::advance(it, rng.Uniform(live.size()));
        plain->OnAccess(*it);
        compacted->OnAccess(*it);
      } else if (roll < 0.7) {
        auto it = live.begin();
        std::advance(it, rng.Uniform(live.size()));
        plain->OnErase(*it);
        compacted->OnErase(*it);
        live.erase(it);
      } else {
        const double incoming = 1.0 + rng.NextDouble() * 10;
        const auto a = plain->PickVictim(incoming);
        const auto b = compacted->PickVictim(incoming);
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
        if (a) {
          ASSERT_EQ(*a, *b) << "seed " << seed << " step " << step;
          plain->OnErase(*a);
          compacted->OnErase(*b);
          live.erase(*a);
        }
      }
      if (step % 97 == 0) compacted_clock->ForceCompact();
      ASSERT_EQ(plain->size(), compacted->size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Clocks, ClockCompactionTest,
                         ::testing::Values(std::string("clock"),
                                           std::string("benefit-clock")),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Behavioral check: under a scan-like trace (insert many once-used
// entries), benefit-clock retains high-benefit entries far longer than
// LRU does.
TEST(ReplacementModelTest, BenefitClockShieldsExpensiveEntries) {
  auto run = [](const char* name) {
    auto policy = MakePolicy(name);
    // Two expensive entries among a stream of cheap ones; cache holds 10.
    std::set<uint64_t> live;
    uint64_t next = 0;
    auto insert = [&](double benefit) {
      while (live.size() >= 10) {
        auto v = policy->PickVictim(benefit);
        policy->OnErase(*v);
        live.erase(*v);
      }
      policy->OnInsert(next, benefit);
      live.insert(next);
      ++next;
    };
    insert(500.0);
    insert(500.0);
    const uint64_t expensive_a = 0, expensive_b = 1;
    for (int i = 0; i < 200; ++i) insert(1.0);
    return live.count(expensive_a) + live.count(expensive_b);
  };
  EXPECT_EQ(run("benefit-clock"), 2u);  // both survived the scan
  EXPECT_EQ(run("lru"), 0u);            // LRU flushed them
}

// Scan-resistance harness: a 10-entry working set is established (with
// whatever warm-up the policy needs to recognize it as valuable), then a
// one-pass scan of 200 never-repeated keys floods through a 10-entry
// budget. Returns how many working-set entries survive.
size_t SurvivorsAfterScan(const std::string& name, bool reinsert_warmup) {
  auto policy = MakePolicy(name);
  std::unordered_map<uint64_t, uint64_t> live;  // key -> handle
  uint64_t next_handle = 0;
  auto evict_to = [&](size_t cap) {
    while (live.size() >= cap) {
      auto v = policy->PickVictim(1.0);
      policy->OnErase(*v);
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->second == *v) {
          live.erase(it);
          break;
        }
      }
    }
  };
  auto insert = [&](uint64_t key) {
    evict_to(10);
    const uint64_t h = next_handle++;
    policy->OnInsertKeyed(h, key, 1.0);
    live[key] = h;
  };
  // Working set: keys 0..9.
  for (uint64_t k = 0; k < 10; ++k) insert(k);
  if (reinsert_warmup) {
    // Evict everything and bring the set back: ghost-based policies (2Q)
    // promote on the re-fetch, exactly like a recurring chunk.
    evict_to(1);
    auto last = policy->PickVictim(1.0);
    if (last) {
      policy->OnErase(*last);
      live.clear();
    }
    for (uint64_t k = 0; k < 10; ++k) insert(k);
  }
  // Mark the set hot.
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 10; ++k) {
      auto it = live.find(k);
      if (it != live.end()) policy->OnAccess(it->second);
    }
  }
  // The flood: 200 cold keys, never re-referenced.
  for (uint64_t k = 1000; k < 1200; ++k) insert(k);
  size_t survivors = 0;
  for (uint64_t k = 0; k < 10; ++k) survivors += live.count(k);
  return survivors;
}

// ARC and SLRU shield a re-referenced working set from a one-pass scan;
// 2Q does the same once its ghost has seen the keys recur. LRU, by
// construction, loses the entire set.
TEST(ReplacementModelTest, ScanResistantPoliciesShieldTheWorkingSet) {
  EXPECT_EQ(SurvivorsAfterScan("lru", false), 0u);
  EXPECT_GE(SurvivorsAfterScan("arc", false), 5u);
  EXPECT_GE(SurvivorsAfterScan("slru", false), 5u);
  EXPECT_GE(SurvivorsAfterScan("2q", true), 5u);
  EXPECT_GE(SurvivorsAfterScan("lfu-aging", false), 5u);
}

// ARC adapts: a key that returns shortly after eviction registers a ghost
// hit, growing the recency target instead of silently missing.
TEST(ReplacementModelTest, ArcGhostHitAdjustsTarget) {
  ArcPolicy arc;
  // Fill, then evict one entry into the B1 ghost list.
  for (uint64_t k = 0; k < 4; ++k) arc.OnInsertKeyed(k, k, 1.0);
  auto v = arc.PickVictim(1.0);
  ASSERT_TRUE(v.has_value());
  arc.OnErase(*v);
  const double p_before = arc.target_p();
  ASSERT_GT(arc.ghost_size(), 0u);
  // Re-fetch the evicted key under a fresh handle: B1 hit, p grows.
  arc.OnInsertKeyed(100, *v, 1.0);
  EXPECT_GT(arc.target_p(), p_before);
}

}  // namespace
}  // namespace chunkcache::cache
