// Model-based randomized testing of the replacement policies: each policy
// is driven with a random insert/access/erase/evict trace and checked
// against policy-specific invariants (LRU against an exact reference
// implementation; the CLOCK variants against structural guarantees that
// must hold for any correct implementation).

#include <gtest/gtest.h>

#include <list>
#include <set>
#include <unordered_map>

#include "cache/replacement.h"
#include "common/random.h"

namespace chunkcache::cache {
namespace {

// Exact reference LRU.
class ReferenceLru {
 public:
  void Insert(uint64_t h) {
    order_.push_front(h);
    pos_[h] = order_.begin();
  }
  void Access(uint64_t h) {
    auto it = pos_.find(h);
    if (it == pos_.end()) return;
    order_.splice(order_.begin(), order_, it->second);
  }
  void Erase(uint64_t h) {
    auto it = pos_.find(h);
    if (it == pos_.end()) return;
    order_.erase(it->second);
    pos_.erase(it);
  }
  std::optional<uint64_t> Victim() const {
    if (order_.empty()) return std::nullopt;
    return order_.back();
  }
  size_t size() const { return pos_.size(); }

 private:
  std::list<uint64_t> order_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> pos_;
};

TEST(ReplacementModelTest, LruMatchesReferenceExactly) {
  for (uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    Random rng(seed);
    LruPolicy policy;
    ReferenceLru reference;
    std::set<uint64_t> live;
    uint64_t next = 0;
    for (int step = 0; step < 5000; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.4 || live.empty()) {
        const uint64_t h = next++;
        policy.OnInsert(h, 1.0);
        reference.Insert(h);
        live.insert(h);
      } else if (roll < 0.6) {
        // Access a random live handle.
        auto it = live.begin();
        std::advance(it, rng.Uniform(live.size()));
        policy.OnAccess(*it);
        reference.Access(*it);
      } else if (roll < 0.8) {
        auto it = live.begin();
        std::advance(it, rng.Uniform(live.size()));
        policy.OnErase(*it);
        reference.Erase(*it);
        live.erase(it);
      } else {
        const auto got = policy.PickVictim(1.0);
        const auto want = reference.Victim();
        ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
        if (got) {
          ASSERT_EQ(*got, *want) << "step " << step;
          // Evict it, as the cache would.
          policy.OnErase(*got);
          reference.Erase(*want);
          live.erase(*got);
        }
      }
      ASSERT_EQ(policy.size(), reference.size());
    }
  }
}

// Structural invariants every policy must satisfy under random traces:
// victims are live entries; size bookkeeping is exact; a policy never
// "loses" entries (every live entry is eventually evictable).
class AnyPolicyModelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AnyPolicyModelTest, VictimsAreAlwaysLiveAndSizeIsExact) {
  auto policy = MakePolicy(GetParam());
  ASSERT_NE(policy, nullptr);
  Random rng(99);
  std::set<uint64_t> live;
  uint64_t next = 0;
  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.45 || live.empty()) {
      const uint64_t h = next++;
      policy->OnInsert(h, 1.0 + rng.NextDouble() * 100);
      live.insert(h);
    } else if (roll < 0.6) {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      policy->OnAccess(*it);
    } else if (roll < 0.75) {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      policy->OnErase(*it);
      live.erase(it);
    } else {
      auto victim = policy->PickVictim(1.0 + rng.NextDouble() * 10);
      ASSERT_EQ(victim.has_value(), !live.empty()) << "step " << step;
      if (victim) {
        ASSERT_TRUE(live.count(*victim)) << "dead victim at step " << step;
        policy->OnErase(*victim);
        live.erase(*victim);
      }
    }
    ASSERT_EQ(policy->size(), live.size()) << "step " << step;
  }
  // Drain: every remaining entry must be nominated eventually.
  while (!live.empty()) {
    auto victim = policy->PickVictim(1e9);
    ASSERT_TRUE(victim.has_value());
    ASSERT_TRUE(live.count(*victim));
    policy->OnErase(*victim);
    live.erase(*victim);
  }
  EXPECT_FALSE(policy->PickVictim(1.0).has_value());
}

INSTANTIATE_TEST_SUITE_P(Policies, AnyPolicyModelTest,
                         ::testing::Values("lru", "clock", "benefit-clock"));

// Behavioral check: under a scan-like trace (insert many once-used
// entries), benefit-clock retains high-benefit entries far longer than
// LRU does.
TEST(ReplacementModelTest, BenefitClockShieldsExpensiveEntries) {
  auto run = [](const char* name) {
    auto policy = MakePolicy(name);
    // Two expensive entries among a stream of cheap ones; cache holds 10.
    std::set<uint64_t> live;
    uint64_t next = 0;
    auto insert = [&](double benefit) {
      while (live.size() >= 10) {
        auto v = policy->PickVictim(benefit);
        policy->OnErase(*v);
        live.erase(*v);
      }
      policy->OnInsert(next, benefit);
      live.insert(next);
      ++next;
    };
    insert(500.0);
    insert(500.0);
    const uint64_t expensive_a = 0, expensive_b = 1;
    for (int i = 0; i < 200; ++i) insert(1.0);
    return live.count(expensive_a) + live.count(expensive_b);
  };
  EXPECT_EQ(run("benefit-clock"), 2u);  // both survived the scan
  EXPECT_EQ(run("lru"), 0u);            // LRU flushed them
}

}  // namespace
}  // namespace chunkcache::cache
