// Tests for cross-query miss coalescing: the in-flight (singleflight)
// table, the shared-scan scheduler, failure propagation to waiters, and
// the exactly-one-computation-per-distinct-chunk guarantee under query
// storms. Runs under ThreadSanitizer in CI (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "backend/scan_scheduler.h"
#include "cache/chunk_cache.h"
#include "common/inflight_table.h"
#include "core/chunk_cache_manager.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace chunkcache {
namespace {

using backend::ChunkData;
using backend::RowRun;
using backend::StarJoinQuery;
using chunks::ChunkCoords;
using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using chunks::GroupBySpec;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;

bool RowsEqual(const std::vector<backend::ResultRow>& a,
               const std::vector<backend::ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].coords != b[i].coords || a[i].sum != b[i].sum ||
        a[i].count != b[i].count || a[i].min_v != b[i].min_v ||
        a[i].max_v != b[i].max_v) {
      return false;
    }
  }
  return true;
}

uint64_t TotalKernels(const backend::BackendEngine& engine) {
  const backend::AggKernelStats ks = engine.kernel_stats();
  return ks.dense_kernels + ks.hash_kernels;
}

// ------------------------------ InflightTable -------------------------------

TEST(InflightTableTest, OwnerPublishesAndWaiterReceivesSharedValue) {
  InflightTable<int, int> table;
  auto first = table.Acquire(7);
  ASSERT_TRUE(first.owner);
  auto second = table.Acquire(7);
  EXPECT_FALSE(second.owner);
  EXPECT_EQ(second.slot.get(), first.slot.get());
  EXPECT_TRUE(table.Pending(7));
  EXPECT_EQ(table.size(), 1u);

  table.Publish(7, first.slot, 42);
  auto got = second.slot->Wait();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 42);

  // Publish retires the entry: the key is claimable again.
  EXPECT_FALSE(table.Pending(7));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.Acquire(7).owner);
  EXPECT_GE(table.peak(), 1u);
}

TEST(InflightTableTest, WaitBlocksUntilPublish) {
  InflightTable<int, int> table;
  auto owner = table.Acquire(1);
  ASSERT_TRUE(owner.owner);
  auto waiter = table.Acquire(1);
  ASSERT_FALSE(waiter.owner);

  std::atomic<bool> received{false};
  std::thread t([&] {
    auto got = waiter.slot->Wait();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, 99);
    received.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(received.load());
  table.Publish(1, owner.slot, 99);
  t.join();
  EXPECT_TRUE(received.load());
}

TEST(InflightTableTest, FailWakesWaitersWithErrorAndRetiresEntry) {
  InflightTable<int, int> table;
  auto owner = table.Acquire(3);
  auto waiter = table.Acquire(3);
  table.Fail(3, owner.slot, Status::IoError("boom"));

  auto got = waiter.slot->Wait();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError);

  // The failed entry is retired so a retry recomputes instead of waiting
  // forever on a dead slot.
  EXPECT_FALSE(table.Pending(3));
  auto retry = table.Acquire(3);
  EXPECT_TRUE(retry.owner);
  table.Publish(3, retry.slot, 5);
  auto ok = retry.slot->Wait();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
}

// ----------------------------- CoalesceRowRuns ------------------------------

TEST(CoalesceRowRunsTest, MaxRowsCapSplitsOnRunBoundaries) {
  std::vector<RowRun> runs = {{20, 10, 1}, {0, 10, 1}, {10, 10, 1}};
  // Unlimited: all three back-to-back runs merge into one read.
  auto merged = backend::CoalesceRowRuns(runs);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].first, 0u);
  EXPECT_EQ(merged[0].count, 30u);
  EXPECT_EQ(merged[0].chunks, 3u);

  // Capped at 25 rows: the third run would overflow the cap, so the split
  // lands on its boundary — no run is ever cut in half.
  auto capped = backend::CoalesceRowRuns(runs, /*max_rows=*/25);
  ASSERT_EQ(capped.size(), 2u);
  EXPECT_EQ(capped[0].first, 0u);
  EXPECT_EQ(capped[0].count, 20u);
  EXPECT_EQ(capped[1].first, 20u);
  EXPECT_EQ(capped[1].count, 10u);

  // Non-adjacent runs never merge, capped or not.
  std::vector<RowRun> gappy = {{0, 5, 1}, {7, 5, 1}};
  EXPECT_EQ(backend::CoalesceRowRuns(gappy, 100).size(), 2u);
}

// ------------------------------ storm fixture -------------------------------

class MissCoalescingFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 20000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<ChunkingScheme>(std::move(scheme).value());

    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 61;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);

    pool_ = std::make_unique<storage::BufferPool>(&disk_, 4096);
    auto file =
        backend::ChunkedFile::BulkLoad(pool_.get(), scheme_.get(), tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(
        pool_.get(), file_.get(), scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  /// A deterministic generated query needing at least `min_chunks` chunks.
  StarJoinQuery PickQuery(uint64_t min_chunks, uint32_t seed = 17) {
    workload::WorkloadOptions wopts;
    wopts.seed = seed;
    workload::QueryGenerator gen(schema_.get(), wopts);
    for (int i = 0; i < 256; ++i) {
      StarJoinQuery q = gen.Next();
      const auto box = scheme_->BoxForSelection(q.group_by, q.selection);
      if (box.NumChunks() >= min_chunks && q.non_group_by.empty()) return q;
    }
    ADD_FAILURE() << "no generated query needs >= " << min_chunks
                  << " chunks";
    return StarJoinQuery{};
  }

  std::vector<backend::ResultRow> ReferenceRows(const StarJoinQuery& q) {
    ChunkManagerOptions opts;
    opts.enable_miss_coalescing = false;  // the pre-coalescing serial path
    ChunkCacheManager ref(engine_.get(), opts);
    QueryStats st;
    auto rows = ref.Execute(q, &st);
    EXPECT_TRUE(rows.ok());
    return std::move(*rows);
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<ChunkingScheme> scheme_;
  std::vector<storage::Tuple> tuples_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

TEST_F(MissCoalescingFixture, IdenticalStormComputesEachDistinctChunkOnce) {
  const StarJoinQuery query = PickQuery(/*min_chunks=*/6);
  const uint64_t distinct =
      scheme_->BoxForSelection(query.group_by, query.selection).NumChunks();
  const std::vector<backend::ResultRow> want = ReferenceRows(query);

  ChunkManagerOptions opts;
  opts.num_workers = 4;
  opts.cache_shards = 8;
  ChunkCacheManager mgr(engine_.get(), opts);
  engine_->ResetKernelStats();

  constexpr int kThreads = 16;
  std::vector<QueryStats> stats(kThreads);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto rows = mgr.Execute(query, &stats[t]);
      if (!rows.ok() || !RowsEqual(*rows, want)) mismatches.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Exactly one backend computation per distinct chunk: the kernel tally
  // increments once per computed chunk, so a single duplicated chunk
  // (cache race, scheduler recompute, ...) fails this equality.
  EXPECT_EQ(TotalKernels(*engine_), distinct);
  uint64_t backend_total = 0;
  uint64_t accounted = 0;
  for (const QueryStats& st : stats) {
    EXPECT_EQ(st.chunks_needed, distinct);
    backend_total += st.chunks_from_backend;
    accounted += st.chunks_from_backend + st.chunks_from_cache +
                 st.coalesced_waits + st.chunks_from_aggregation;
  }
  EXPECT_EQ(backend_total, distinct);
  EXPECT_EQ(accounted, static_cast<uint64_t>(kThreads) * distinct);

  const cache::ChunkCacheStats cs = mgr.StatsSnapshot();
  EXPECT_EQ(cs.dedup_saved_chunks, cs.coalesced_waits);
  EXPECT_GE(cs.inflight_peak, 1u);
  EXPECT_GE(cs.shared_scan_requests, 1u);
  EXPECT_GE(cs.shared_scan_batches, 1u);
}

TEST_F(MissCoalescingFixture, OverlappingStormComputesUnionOnce) {
  const StarJoinQuery base = PickQuery(/*min_chunks=*/8);
  // Variants restrict the first dimension whose selection spans >= 2
  // ordinals; all variant chunk sets are subsets of the base query's.
  std::vector<StarJoinQuery> variants = {base};
  for (uint32_t d = 0; d < base.group_by.num_dims; ++d) {
    const auto& r = base.selection[d];
    if (r.end > r.begin) {
      const uint32_t mid = r.begin + (r.end - r.begin) / 2;
      StarJoinQuery lo = base;
      lo.selection[d].end = mid;
      StarJoinQuery hi = base;
      hi.selection[d].begin = mid;
      variants.push_back(lo);
      variants.push_back(hi);
      break;
    }
  }
  const uint64_t distinct =
      scheme_->BoxForSelection(base.group_by, base.selection).NumChunks();
  std::vector<std::vector<backend::ResultRow>> want;
  want.reserve(variants.size());
  for (const auto& q : variants) want.push_back(ReferenceRows(q));

  ChunkManagerOptions opts;
  opts.num_workers = 4;
  opts.cache_shards = 8;
  ChunkCacheManager mgr(engine_.get(), opts);
  engine_->ResetKernelStats();

  constexpr int kThreads = 16;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const size_t v = static_cast<size_t>(t) % variants.size();
      QueryStats st;
      auto rows = mgr.Execute(variants[v], &st);
      if (!rows.ok() || !RowsEqual(*rows, want[v])) mismatches.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  // The union of all variants' chunks is exactly the base query's set, and
  // every distinct chunk was computed exactly once across the whole storm.
  EXPECT_EQ(TotalKernels(*engine_), distinct);
}

TEST_F(MissCoalescingFixture, CoalescingOffIsBitIdenticalToOn) {
  // Serial stream through both configurations: the ablation flag must not
  // change a single row or stats field.
  workload::WorkloadOptions wopts;
  wopts.seed = 23;
  workload::QueryGenerator gen(schema_.get(), wopts);
  ChunkManagerOptions on_opts;
  on_opts.enable_miss_coalescing = true;
  ChunkManagerOptions off_opts;
  off_opts.enable_miss_coalescing = false;
  ChunkCacheManager on_mgr(engine_.get(), on_opts);
  ChunkCacheManager off_mgr(engine_.get(), off_opts);
  ASSERT_NE(on_mgr.scan_scheduler(), nullptr);
  ASSERT_EQ(off_mgr.scan_scheduler(), nullptr);

  for (int i = 0; i < 32; ++i) {
    const StarJoinQuery q = gen.Next();
    QueryStats on_st;
    QueryStats off_st;
    auto on_rows = on_mgr.Execute(q, &on_st);
    auto off_rows = off_mgr.Execute(q, &off_st);
    ASSERT_TRUE(on_rows.ok());
    ASSERT_TRUE(off_rows.ok());
    EXPECT_TRUE(RowsEqual(*on_rows, *off_rows)) << "query " << i;
    EXPECT_EQ(on_st.chunks_needed, off_st.chunks_needed);
    EXPECT_EQ(on_st.chunks_from_cache, off_st.chunks_from_cache);
    EXPECT_EQ(on_st.chunks_from_backend, off_st.chunks_from_backend);
    EXPECT_EQ(on_st.full_cache_hit, off_st.full_cache_hit);
    EXPECT_EQ(on_st.saved_fraction, off_st.saved_fraction);
    EXPECT_EQ(on_st.coalesced_waits, 0u);  // serial: nothing to wait on
  }
}

TEST_F(MissCoalescingFixture, StormWithPrefetchDeduplicatesChildFetches) {
  const StarJoinQuery query = PickQuery(/*min_chunks=*/4);
  const uint64_t distinct =
      scheme_->BoxForSelection(query.group_by, query.selection).NumChunks();

  // Drill-down target the prefetcher will derive: every grouped dimension
  // one level finer, capped at the hierarchy depth.
  GroupBySpec drill = query.group_by;
  bool changed = false;
  for (uint32_t d = 0; d < drill.num_dims; ++d) {
    const auto& h = schema_->dimension(d).hierarchy;
    if (drill.levels[d] < h.depth()) {
      drill.levels[d]++;
      changed = true;
    }
  }
  ASSERT_TRUE(changed) << "picked query already at base granularity";
  // Distinct children across all needed chunks.
  std::vector<uint64_t> needed;
  const auto box = scheme_->BoxForSelection(query.group_by, query.selection);
  box.ForEach(scheme_->GridFor(query.group_by),
              [&](uint64_t num, const ChunkCoords&) { needed.push_back(num); });
  std::vector<uint64_t> children;
  for (uint64_t num : needed) {
    auto src = scheme_->SourceBox(query.group_by, num, drill);
    ASSERT_TRUE(src.ok());
    src->ForEach(scheme_->GridFor(drill), [&](uint64_t child,
                                              const ChunkCoords&) {
      children.push_back(child);
    });
  }
  std::sort(children.begin(), children.end());
  children.erase(std::unique(children.begin(), children.end()),
                 children.end());

  ChunkManagerOptions opts;
  opts.num_workers = 4;
  opts.cache_shards = 8;
  opts.enable_drill_down_prefetch = true;
  opts.prefetch_budget_chunks = 100000;  // never truncate the plan
  ChunkCacheManager mgr(engine_.get(), opts);
  engine_->ResetKernelStats();

  constexpr int kThreads = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      QueryStats st;
      if (!mgr.Execute(query, &st).ok()) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  mgr.DrainPrefetch();

  EXPECT_EQ(failures.load(), 0);
  // Foreground chunks and prefetched children were each computed exactly
  // once, no matter how many of the 16 queries raced to plan the same
  // prefetch: the in-flight table dropped every duplicate.
  EXPECT_EQ(TotalKernels(*engine_), distinct + children.size());
}

// --------------------------- fault / gate fixture ---------------------------

/// DiskManager decorator with (a) an injectable read fault and (b) a gate
/// that blocks ReadPage while closed — used to hold a scheduler leader
/// mid-scan so concurrent requests pile up deterministically.
class GateDiskManager final : public storage::DiskManager {
 public:
  explicit GateDiskManager(storage::DiskManager* inner) : inner_(inner) {}

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  int blocked_readers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_;
  }
  void set_fail_reads(bool v) {
    fail_reads_.store(v, std::memory_order_relaxed);
  }

  uint32_t CreateFile() override { return inner_->CreateFile(); }
  Result<storage::PageId> AllocatePage(uint32_t file_id) override {
    return inner_->AllocatePage(file_id);
  }
  Status ReadPage(storage::PageId id, storage::Page* out) override {
    if (fail_reads_.load(std::memory_order_relaxed)) {
      return Status::IoError("injected read fault");
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!open_) {
        ++blocked_;
        cv_.wait(lock, [&] { return open_; });
        --blocked_;
      }
    }
    return inner_->ReadPage(id, out);
  }
  Status WritePage(storage::PageId id, const storage::Page& page) override {
    return inner_->WritePage(id, page);
  }
  uint32_t FilePageCount(uint32_t file_id) const override {
    return inner_->FilePageCount(file_id);
  }

 private:
  storage::DiskManager* inner_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = true;
  int blocked_ = 0;
  std::atomic<bool> fail_reads_{false};
};

class GatedBackendFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 6000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<ChunkingScheme>(std::move(scheme).value());

    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 7;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);

    gate_ = std::make_unique<GateDiskManager>(&disk_);
    // Tiny pool: reads cannot hide in the buffer pool, so gates and
    // injected faults always reach the disk layer.
    pool_ = std::make_unique<storage::BufferPool>(gate_.get(), 4);
    auto file =
        backend::ChunkedFile::BulkLoad(pool_.get(), scheme_.get(), tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(
        pool_.get(), file_.get(), scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<GateDiskManager> gate_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<ChunkingScheme> scheme_;
  std::vector<storage::Tuple> tuples_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

TEST_F(GatedBackendFixture, FailureReachesAllWaitersAndRetrySucceeds) {
  workload::WorkloadOptions wopts;
  wopts.seed = 5;
  workload::QueryGenerator gen(schema_.get(), wopts);
  const StarJoinQuery query = gen.Next();
  const std::vector<backend::ResultRow> want = [&] {
    ChunkManagerOptions ref_opts;
    ref_opts.enable_miss_coalescing = false;
    ChunkCacheManager ref(engine_.get(), ref_opts);
    QueryStats st;
    auto rows = ref.Execute(query, &st);
    EXPECT_TRUE(rows.ok());
    return std::move(*rows);
  }();

  ChunkManagerOptions opts;
  opts.num_workers = 4;
  opts.cache_shards = 4;
  ChunkCacheManager mgr(engine_.get(), opts);

  gate_->set_fail_reads(true);
  constexpr int kThreads = 8;
  std::atomic<int> oks{0};
  std::atomic<int> io_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      QueryStats st;
      auto rows = mgr.Execute(query, &st);
      if (rows.ok()) {
        oks.fetch_add(1);
      } else if (rows.status().code() == StatusCode::kIoError) {
        io_errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Nothing was cached, so every storm thread — owners and coalesced
  // waiters alike — must see the injected fault, and nobody deadlocks.
  EXPECT_EQ(oks.load(), 0);
  EXPECT_EQ(io_errors.load(), kThreads);

  // The failed entries were retired, so after the disk heals a retry
  // recomputes from scratch and matches the reference bit-for-bit.
  gate_->set_fail_reads(false);
  QueryStats st;
  auto rows = mgr.Execute(query, &st);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(RowsEqual(*rows, want));
  EXPECT_GT(st.chunks_from_backend, 0u);
}

TEST_F(GatedBackendFixture, SchedulerMergesRequestsWhileScanSlotIsBusy) {
  const GroupBySpec target{{1, 1, 1, 1}, 4};
  const uint64_t total = scheme_->GridFor(target).num_chunks();
  ASSERT_GE(total, 6u);
  const std::vector<uint64_t> req1 = {0, 1};
  const std::vector<uint64_t> req2 = {2, 3};
  const std::vector<uint64_t> req3 = {3, 4, 5};  // overlaps req2 on 3

  backend::ScanSchedulerOptions sopts;
  sopts.max_outstanding_scans = 1;  // a single scan slot forces queueing
  backend::ScanScheduler sched(engine_.get(), sopts);

  // The first request leads a batch, takes the only slot, and stalls in
  // ReadPage behind the closed gate.
  gate_->CloseGate();
  WorkCounters w1;
  Result<std::vector<ChunkData>> r1 = std::vector<ChunkData>{};
  std::thread t1([&] { r1 = sched.Compute(target, req1, {}, &w1); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (gate_->blocked_readers() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(gate_->blocked_readers(), 0) << "leader never reached the disk";

  // Two more same-target requests arrive: one opens the second batch and
  // waits for the slot; the other joins that open batch.
  WorkCounters w2;
  WorkCounters w3;
  Result<std::vector<ChunkData>> r2 = std::vector<ChunkData>{};
  Result<std::vector<ChunkData>> r3 = std::vector<ChunkData>{};
  std::thread t2([&] { r2 = sched.Compute(target, req2, {}, &w2); });
  std::thread t3([&] { r3 = sched.Compute(target, req3, {}, &w3); });
  while ((sched.stats().requests < 3 || sched.stats().merged_requests < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(sched.stats().merged_requests, 1u) << "requests never merged";

  gate_->OpenGate();
  t1.join();
  t2.join();
  t3.join();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());

  const backend::ScanSchedulerStats ss = sched.stats();
  EXPECT_EQ(ss.requests, 3u);
  EXPECT_EQ(ss.batches, 2u);  // storm of 3 requests -> 2 physical scans
  EXPECT_EQ(ss.merged_requests, 1u);
  EXPECT_EQ(ss.outstanding_scans, 0u);
  EXPECT_EQ(ss.queue_depth, 0u);

  // Every requester got exactly its chunks, bit-identical to a direct
  // engine computation, and the merged batch's work adds up exactly.
  const auto check = [&](const std::vector<uint64_t>& want_nums,
                         const std::vector<ChunkData>& got) {
    ASSERT_EQ(got.size(), want_nums.size());
    WorkCounters direct_work;
    auto direct = engine_->ComputeChunks(target, want_nums, {}, &direct_work);
    ASSERT_TRUE(direct.ok());
    for (size_t i = 0; i < want_nums.size(); ++i) {
      EXPECT_EQ(got[i].chunk_num, want_nums[i]);
      ASSERT_EQ(got[i].cols.size(), (*direct)[i].cols.size());
      for (size_t r = 0; r < got[i].cols.size(); ++r) {
        const storage::AggTuple x = got[i].cols.RowAt(r);
        const storage::AggTuple y = (*direct)[i].cols.RowAt(r);
        EXPECT_EQ(x.coords, y.coords);
        EXPECT_EQ(x.sum, y.sum);
        EXPECT_EQ(x.count, y.count);
      }
    }
  };
  check(req1, *r1);
  check(req2, *r2);
  check(req3, *r3);
  EXPECT_GT(w1.tuples_processed + w2.tuples_processed + w3.tuples_processed,
            0u);
}

}  // namespace
}  // namespace chunkcache
