// Golden-structure tests for the per-query trace spans: the span tree a
// canned workload produces is asserted name-by-name, parent-by-parent,
// tag-by-tag — durations and timestamps excluded — and must be bit-stable
// across runs and identical with miss coalescing on or off.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "common/trace.h"
#include "core/chunk_cache_manager.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace chunkcache::core {
namespace {

using backend::StarJoinQuery;
using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using chunks::GroupBySpec;
using schema::OrdinalRange;

// The duration-free shape of a span: everything the golden tests compare.
struct SpanShape {
  std::string name;
  uint32_t parent = kNoParentSpan;
  std::vector<std::pair<std::string, std::string>> tags;

  bool operator==(const SpanShape& o) const {
    return name == o.name && parent == o.parent && tags == o.tags;
  }
};

using TraceShape = std::vector<SpanShape>;

TraceShape ShapeOf(const QueryTrace& t) {
  TraceShape out;
  out.reserve(t.spans.size());
  for (const TraceSpan& s : t.spans) {
    out.push_back(SpanShape{s.name, s.parent, s.tags});
  }
  return out;
}

std::vector<TraceShape> ShapesOf(TraceRecorder* rec, size_t n) {
  std::vector<TraceShape> out;
  for (const QueryTrace& t : rec->Latest(n)) out.push_back(ShapeOf(t));
  return out;
}

std::string Describe(const TraceShape& shape) {
  std::string out;
  for (const SpanShape& s : shape) {
    out += s.name + "(parent=" +
           (s.parent == kNoParentSpan ? std::string("root")
                                      : std::to_string(s.parent)) +
           ";";
    for (const auto& [k, v] : s.tags) out += " " + k + "=" + v;
    out += ")\n";
  }
  return out;
}

const std::string* TagValue(const SpanShape& s, const std::string& key) {
  for (const auto& [k, v] : s.tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

class TraceFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 10000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<ChunkingScheme>(std::move(scheme).value());

    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 23;
    pool_ = std::make_unique<storage::BufferPool>(&disk_, 4096);
    auto file = backend::ChunkedFile::BulkLoad(
        pool_.get(), scheme_.get(), schema::GenerateFactTuples(*schema_, gen));
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(pool_.get(),
                                                       file_.get(),
                                                       scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  /// Serial tracing options: one worker and one shard so the canned 4-d
  /// workload below is fully deterministic.
  static ChunkManagerOptions TracedOptions() {
    ChunkManagerOptions opts;
    opts.num_workers = 1;
    opts.cache_shards = 1;
    opts.trace_capacity = 32;
    return opts;
  }

  StarJoinQuery FullDomainQuery(const GroupBySpec& gb) const {
    StarJoinQuery q;
    q.group_by = gb;
    for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
      q.selection[d] = {
          0,
          schema_->dimension(d).hierarchy.LevelCardinality(gb.levels[d]) - 1};
    }
    return q;
  }

  /// The canned 4-d workload: a misaligned-selection query (cold), the
  /// same query again (all hits), the full domain at the same group-by
  /// (partial hits), then the full domain one level coarser — which can
  /// be answered entirely by in-cache aggregation when that is enabled.
  std::vector<StarJoinQuery> CannedWorkload() const {
    StarJoinQuery q1;
    q1.group_by = GroupBySpec{{2, 1, 2, 1}, 4};
    q1.selection[0] = OrdinalRange{7, 33};
    q1.selection[1] = OrdinalRange{3, 11};
    q1.selection[2] = OrdinalRange{1, 17};
    q1.selection[3] = OrdinalRange{2, 7};
    return {q1, q1, FullDomainQuery(GroupBySpec{{2, 1, 2, 1}, 4}),
            FullDomainQuery(GroupBySpec{{1, 1, 1, 1}, 4})};
  }

  std::vector<TraceShape> RunWorkload(ChunkManagerOptions opts) {
    ChunkCacheManager mgr(engine_.get(), opts);
    const std::vector<StarJoinQuery> workload = CannedWorkload();
    for (const StarJoinQuery& q : workload) {
      QueryStats stats;
      auto rows = mgr.Execute(q, &stats);
      EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    }
    EXPECT_NE(mgr.trace_recorder(), nullptr);
    return ShapesOf(mgr.trace_recorder(), workload.size());
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<ChunkingScheme> scheme_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

TEST_F(TraceFixture, GoldenSpanTreeColdThenWarm) {
  ChunkCacheManager mgr(engine_.get(), TracedOptions());
  StarJoinQuery q;
  q.group_by = GroupBySpec{{2, 1, 2, 1}, 4};
  q.selection[0] = OrdinalRange{7, 33};
  q.selection[1] = OrdinalRange{3, 11};
  q.selection[2] = OrdinalRange{1, 17};
  q.selection[3] = OrdinalRange{2, 7};
  QueryStats stats;
  auto rows = mgr.Execute(q, &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_GT(stats.chunks_needed, 0u);

  TraceRecorder* rec = mgr.trace_recorder();
  ASSERT_NE(rec, nullptr);
  auto latest = rec->Latest(1);
  ASSERT_EQ(latest.size(), 1u);
  const TraceShape cold = ShapeOf(latest[0]);
  SCOPED_TRACE(Describe(cold));

  // Cold query: every chunk misses, so the tree is
  //   execute -> decompose, cache_probe, miss_pipeline -> scan_aggregate,
  //   rollup.
  ASSERT_EQ(cold.size(), 6u);
  const std::string chunks = std::to_string(stats.chunks_needed);

  EXPECT_EQ(cold[0].name, "execute");
  EXPECT_EQ(cold[0].parent, kNoParentSpan);
  ASSERT_NE(TagValue(cold[0], "group_by"), nullptr);
  EXPECT_EQ(*TagValue(cold[0], "group_by"), q.group_by.ToString());
  EXPECT_EQ(*TagValue(cold[0], "chunks_needed"), chunks);
  EXPECT_EQ(*TagValue(cold[0], "status"), "Ok");

  EXPECT_EQ(cold[1].name, "decompose");
  EXPECT_EQ(cold[1].parent, 0u);
  EXPECT_EQ(*TagValue(cold[1], "chunks"), chunks);

  EXPECT_EQ(cold[2].name, "cache_probe");
  EXPECT_EQ(cold[2].parent, 0u);
  EXPECT_EQ(*TagValue(cold[2], "hits"), "0");
  EXPECT_EQ(*TagValue(cold[2], "owned"), chunks);
  EXPECT_EQ(*TagValue(cold[2], "waits"), "0");

  EXPECT_EQ(cold[3].name, "miss_pipeline");
  EXPECT_EQ(cold[3].parent, 0u);
  EXPECT_EQ(*TagValue(cold[3], "chunks"), chunks);
  EXPECT_EQ(*TagValue(cold[3], "provenance"), "backend");

  EXPECT_EQ(cold[4].name, "scan_aggregate");
  EXPECT_EQ(cold[4].parent, 3u);

  EXPECT_EQ(cold[5].name, "rollup");
  EXPECT_EQ(cold[5].parent, 0u);
  EXPECT_EQ(*TagValue(cold[5], "rows"), std::to_string(rows->size()));

  // Every span's duration was closed (no kOpen sentinels leak out), and
  // children start no earlier than their parent.
  for (const TraceSpan& s : latest[0].spans) {
    EXPECT_NE(s.duration_ns, ~uint64_t{0}) << s.name;
    if (s.parent != kNoParentSpan) {
      EXPECT_GE(s.start_ns, latest[0].spans[s.parent].start_ns) << s.name;
    }
  }

  // Warm repeat: all hits — no miss pipeline, no scan.
  QueryStats warm_stats;
  ASSERT_TRUE(mgr.Execute(q, &warm_stats).ok());
  ASSERT_EQ(warm_stats.chunks_from_cache, warm_stats.chunks_needed);
  auto warm_latest = rec->Latest(1);
  ASSERT_EQ(warm_latest.size(), 1u);
  const TraceShape warm = ShapeOf(warm_latest[0]);
  SCOPED_TRACE(Describe(warm));
  ASSERT_EQ(warm.size(), 4u);
  EXPECT_EQ(warm[0].name, "execute");
  EXPECT_EQ(warm[1].name, "decompose");
  EXPECT_EQ(warm[2].name, "cache_probe");
  EXPECT_EQ(*TagValue(warm[2], "hits"), chunks);
  EXPECT_EQ(*TagValue(warm[2], "owned"), "0");
  EXPECT_EQ(warm[3].name, "rollup");
}

TEST_F(TraceFixture, SpanStructureBitStableAcrossRuns) {
  const std::vector<TraceShape> run1 = RunWorkload(TracedOptions());
  const std::vector<TraceShape> run2 = RunWorkload(TracedOptions());
  ASSERT_EQ(run1.size(), run2.size());
  for (size_t i = 0; i < run1.size(); ++i) {
    EXPECT_EQ(run1[i], run2[i])
        << "trace " << i << " diverged:\n--- run1:\n" << Describe(run1[i])
        << "--- run2:\n" << Describe(run2[i]);
  }
}

TEST_F(TraceFixture, SpanStructureIdenticalWithCoalescingOnAndOff) {
  // The satellite property: enabling miss coalescing must not change the
  // span structure of a serial workload (durations excluded) — the
  // wait_coalesced span only appears when another query actually owns a
  // chunk, never merely because the feature is on.
  ChunkManagerOptions on = TracedOptions();
  on.enable_miss_coalescing = true;
  ChunkManagerOptions off = TracedOptions();
  off.enable_miss_coalescing = false;
  const std::vector<TraceShape> with = RunWorkload(on);
  const std::vector<TraceShape> without = RunWorkload(off);
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i], without[i])
        << "trace " << i << " diverged:\n--- coalescing on:\n"
        << Describe(with[i]) << "--- coalescing off:\n"
        << Describe(without[i]);
  }
}

TEST_F(TraceFixture, InCacheAggregationEmitsItsSpan) {
  ChunkManagerOptions opts = TracedOptions();
  opts.enable_in_cache_aggregation = true;
  const std::vector<TraceShape> shapes = RunWorkload(opts);
  ASSERT_EQ(shapes.size(), 4u);
  // The last query (full domain, one level coarser than the now fully
  // cached group-by) must carry an aggregate_in_cache span with at least
  // one rolled-up chunk.
  const TraceShape& t = shapes.back();
  SCOPED_TRACE(Describe(t));
  const SpanShape* agg = nullptr;
  for (const SpanShape& s : t) {
    if (s.name == "aggregate_in_cache") agg = &s;
  }
  ASSERT_NE(agg, nullptr);
  ASSERT_NE(TagValue(*agg, "chunks"), nullptr);
  EXPECT_NE(*TagValue(*agg, "chunks"), "0");
}

TEST_F(TraceFixture, RingRetentionDropsOldestAndKeepsIds) {
  ChunkManagerOptions opts = TracedOptions();
  opts.trace_capacity = 2;
  ChunkCacheManager mgr(engine_.get(), opts);
  const StarJoinQuery q = FullDomainQuery(GroupBySpec{{1, 1, 1, 1}, 4});
  for (int i = 0; i < 3; ++i) {
    QueryStats stats;
    ASSERT_TRUE(mgr.Execute(q, &stats).ok());
  }
  TraceRecorder* rec = mgr.trace_recorder();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->recorded(), 3u);
  EXPECT_EQ(rec->dropped(), 1u);
  const auto latest = rec->Latest(10);
  ASSERT_EQ(latest.size(), 2u);
  // Oldest first, ids assigned in admission order.
  EXPECT_EQ(latest[0].id, 2u);
  EXPECT_EQ(latest[1].id, 3u);
}

TEST_F(TraceFixture, DisabledTracingRecordsNothing) {
  ChunkManagerOptions opts = TracedOptions();
  opts.trace_capacity = 0;
  ChunkCacheManager mgr(engine_.get(), opts);
  EXPECT_EQ(mgr.trace_recorder(), nullptr);
  const StarJoinQuery q = FullDomainQuery(GroupBySpec{{1, 1, 1, 1}, 4});
  QueryStats stats;
  ASSERT_TRUE(mgr.Execute(q, &stats).ok());
}

TEST_F(TraceFixture, ExportJsonlIsOneObjectPerTrace) {
  ChunkCacheManager mgr(engine_.get(), TracedOptions());
  for (const StarJoinQuery& q : CannedWorkload()) {
    QueryStats stats;
    ASSERT_TRUE(mgr.Execute(q, &stats).ok());
  }
  const std::string jsonl = mgr.trace_recorder()->ExportJsonl(2);
  // Two lines, each a self-contained object with the root span.
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"trace\": "), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\": \"execute\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"parent\": -1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"tags\": {"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"duration_ns\": 18446744073709551615"),
            std::string::npos)
      << "open-duration sentinel leaked into the export";
}

}  // namespace
}  // namespace chunkcache::core
