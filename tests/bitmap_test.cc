#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "index/bitmap.h"
#include "index/bitmap_index.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fact_file.h"

namespace chunkcache::index {
namespace {

using storage::BufferPool;
using storage::FactFile;
using storage::InMemoryDiskManager;
using storage::Tuple;
using storage::TupleDesc;

// --------------------------------- Bitmap -----------------------------------

TEST(BitmapTest, SetGetClearCount) {
  Bitmap b(130);
  EXPECT_EQ(b.CountSet(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(129));
  EXPECT_FALSE(b.Get(1));
  EXPECT_EQ(b.CountSet(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Get(64));
  EXPECT_EQ(b.CountSet(), 2u);
}

TEST(BitmapTest, AndOr) {
  Bitmap a(100), b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(2);
  Bitmap both = a;
  both.And(b);
  EXPECT_EQ(both.CountSet(), 2u);
  EXPECT_TRUE(both.Get(50));
  EXPECT_TRUE(both.Get(99));
  Bitmap either = a;
  either.Or(b);
  EXPECT_EQ(either.CountSet(), 4u);
}

TEST(BitmapTest, NotRespectsTailBits) {
  Bitmap b(70);
  b.Set(0);
  b.Not();
  EXPECT_FALSE(b.Get(0));
  EXPECT_EQ(b.CountSet(), 69u);  // tail bits beyond 70 must stay clear
}

TEST(BitmapTest, SetAllAndToVector) {
  Bitmap b(67);
  b.SetAll();
  EXPECT_EQ(b.CountSet(), 67u);
  auto v = b.ToVector();
  ASSERT_EQ(v.size(), 67u);
  EXPECT_EQ(v.front(), 0u);
  EXPECT_EQ(v.back(), 66u);
}

TEST(BitmapTest, ForEachSetAscending) {
  Bitmap b(200);
  std::vector<uint64_t> expected = {3, 64, 65, 127, 128, 199};
  for (auto i : expected) b.Set(i);
  std::vector<uint64_t> seen;
  b.ForEachSet([&](uint64_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

// ------------------------------- BitmapIndex --------------------------------

struct IndexFixture {
  InMemoryDiskManager dm;
  BufferPool pool{&dm, 512};
  std::vector<Tuple> rows;

  // Two-dimension fact file; dim 0 has `d0_card` values round-robin, dim 1
  // random.
  Result<FactFile> MakeFact(uint32_t n, uint32_t d0_card, uint32_t d1_card) {
    auto file = FactFile::Create(&pool, TupleDesc{2});
    if (!file.ok()) return file;
    Random rng(1);
    for (uint32_t i = 0; i < n; ++i) {
      Tuple t;
      t.keys[0] = i % d0_card;
      t.keys[1] = static_cast<uint32_t>(rng.Uniform(d1_card));
      t.measure = i;
      auto rid = file->Append(t);
      if (!rid.ok()) return rid.status();
      rows.push_back(t);
    }
    return file;
  }
};

TEST(BitmapTest, WordOpsBitIdenticalScalarVsAvx2) {
  if (simd::DetectedLevel() != simd::IsaLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  Random rng(31337);
  // Sizes straddle the 8-word AVX2 block and the 4-word skip window.
  for (uint64_t bits : {1ull, 63ull, 64ull, 65ull, 255ull, 256ull, 257ull,
                        511ull, 513ull, 4096ull, 4100ull}) {
    Bitmap a(bits), b(bits);
    for (uint64_t i = 0; i < bits; ++i) {
      if (rng.Uniform(3) == 0) a.Set(i);
      if (rng.Uniform(3) == 0) b.Set(i);
    }
    const auto run = [&](simd::IsaLevel level) {
      simd::ScopedLevel pin(level);
      Bitmap anded = a;
      anded.And(b);
      Bitmap ored = a;
      ored.Or(b);
      std::vector<uint64_t> visited;
      anded.ForEachSet([&](uint64_t i) { visited.push_back(i); });
      return std::tuple(anded.CountSet(), ored.CountSet(),
                        std::move(visited), anded.ToVector(),
                        ored.ToVector());
    };
    EXPECT_EQ(run(simd::IsaLevel::kScalar), run(simd::IsaLevel::kAvx2))
        << "bits=" << bits;
  }
}

TEST(BitmapTest, ForEachSetSkipsLongZeroRuns) {
  // A sparse bitmap with multi-word gaps exercises the 4-word zero-skip
  // fast path; positions must still come back in ascending order.
  Bitmap b(64 * 40);
  const std::vector<uint64_t> want = {0, 5, 64 * 17 + 3, 64 * 39 + 63};
  for (uint64_t i : want) b.Set(i);
  std::vector<uint64_t> got;
  b.ForEachSet([&](uint64_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitmapIndexTest, SingleValueBitmapMatchesData) {
  IndexFixture f;
  auto fact = f.MakeFact(5000, 10, 7);
  ASSERT_TRUE(fact.ok());
  auto idx = BitmapIndex::Build(&f.pool, &*fact, 0, 10);
  ASSERT_TRUE(idx.ok());
  Bitmap b;
  ASSERT_TRUE(idx->ReadBitmap(3, &b).ok());
  EXPECT_EQ(b.num_bits(), 5000u);
  for (uint32_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(b.Get(i), f.rows[i].keys[0] == 3) << "row " << i;
  }
}

TEST(BitmapIndexTest, RangeIsUnionOfValues) {
  IndexFixture f;
  auto fact = f.MakeFact(3000, 10, 7);
  ASSERT_TRUE(fact.ok());
  auto idx = BitmapIndex::Build(&f.pool, &*fact, 0, 10);
  ASSERT_TRUE(idx.ok());
  Bitmap range;
  ASSERT_TRUE(idx->EvaluateRange(2, 5, &range).ok());
  uint64_t expected = 0;
  for (const auto& t : f.rows) expected += (t.keys[0] >= 2 && t.keys[0] <= 5);
  EXPECT_EQ(range.CountSet(), expected);
}

TEST(BitmapIndexTest, SecondDimensionAndSelection) {
  IndexFixture f;
  auto fact = f.MakeFact(4000, 8, 5);
  ASSERT_TRUE(fact.ok());
  auto idx0 = BitmapIndex::Build(&f.pool, &*fact, 0, 8);
  auto idx1 = BitmapIndex::Build(&f.pool, &*fact, 1, 5);
  ASSERT_TRUE(idx0.ok());
  ASSERT_TRUE(idx1.ok());
  Bitmap a, b;
  ASSERT_TRUE(idx0->EvaluateRange(0, 3, &a).ok());
  ASSERT_TRUE(idx1->EvaluateRange(2, 2, &b).ok());
  a.And(b);
  uint64_t expected = 0;
  for (const auto& t : f.rows) {
    expected += (t.keys[0] <= 3 && t.keys[1] == 2);
  }
  EXPECT_EQ(a.CountSet(), expected);
}

TEST(BitmapIndexTest, ErrorsOnBadArguments) {
  IndexFixture f;
  auto fact = f.MakeFact(100, 4, 4);
  ASSERT_TRUE(fact.ok());
  EXPECT_FALSE(BitmapIndex::Build(&f.pool, &*fact, 9, 4).ok());
  EXPECT_FALSE(BitmapIndex::Build(&f.pool, &*fact, 0, 0).ok());
  auto idx = BitmapIndex::Build(&f.pool, &*fact, 0, 4);
  ASSERT_TRUE(idx.ok());
  Bitmap b;
  EXPECT_EQ(idx->ReadBitmap(4, &b).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(idx->EvaluateRange(2, 1, &b).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(idx->EvaluateRange(0, 4, &b).code(), StatusCode::kOutOfRange);
}

TEST(BitmapIndexTest, BuildRejectsOutOfDomainOrdinal) {
  IndexFixture f;
  auto fact = f.MakeFact(100, 10, 4);
  ASSERT_TRUE(fact.ok());
  // Declare fewer values than the data actually contains.
  auto idx = BitmapIndex::Build(&f.pool, &*fact, 0, 5);
  EXPECT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kCorruption);
}

TEST(BitmapIndexTest, OpenReadsExistingIndex) {
  IndexFixture f;
  auto fact = f.MakeFact(2000, 6, 3);
  ASSERT_TRUE(fact.ok());
  uint32_t file_id;
  {
    auto idx = BitmapIndex::Build(&f.pool, &*fact, 1, 3);
    ASSERT_TRUE(idx.ok());
    file_id = idx->file_id();
  }
  auto idx = BitmapIndex::Open(&f.pool, file_id, 1);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->num_values(), 3u);
  EXPECT_EQ(idx->num_rows(), 2000u);
  Bitmap b;
  ASSERT_TRUE(idx->ReadBitmap(0, &b).ok());
  uint64_t expected = 0;
  for (const auto& t : f.rows) expected += (t.keys[1] == 0);
  EXPECT_EQ(b.CountSet(), expected);
}

TEST(BitmapIndexTest, ReadingBitmapCostsIo) {
  IndexFixture f;
  auto fact = f.MakeFact(40000, 4, 4);  // bitmap = 5 KB -> 2 pages per value
  ASSERT_TRUE(fact.ok());
  auto idx = BitmapIndex::Build(&f.pool, &*fact, 0, 4);
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(f.pool.EvictAll().ok());
  f.pool.ResetStats();
  Bitmap b;
  ASSERT_TRUE(idx->ReadBitmap(0, &b).ok());
  EXPECT_EQ(f.pool.stats().misses, idx->pages_per_bitmap());
}

}  // namespace
}  // namespace chunkcache::index
