// Multi-threaded tests for the sharded chunk cache, the pinned-handle
// lifetime guarantees, and the parallel miss-chunk pipeline. Run under
// ThreadSanitizer in CI (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "cache/chunk_cache.h"
#include "common/thread_pool.h"
#include "core/chunk_cache_manager.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace chunkcache {
namespace {

using backend::StarJoinQuery;
using cache::CachedChunk;
using cache::ChunkCache;
using cache::ChunkHandle;
using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using chunks::GroupBySpec;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;
using storage::AggTuple;

/// A chunk whose rows encode (group_by_id, chunk_num) so readers can verify
/// they never observe another key's data.
CachedChunk MakeChunk(uint32_t gb, uint64_t chunk_num, size_t num_rows,
                      double benefit = 1.0) {
  CachedChunk c;
  c.group_by_id = gb;
  c.chunk_num = chunk_num;
  c.benefit = benefit;
  c.cols = storage::AggColumns(2);
  for (size_t i = 0; i < num_rows; ++i) {
    const uint32_t coords[2] = {gb, static_cast<uint32_t>(chunk_num)};
    c.cols.PushCell(coords, static_cast<double>(gb) * 1000 + chunk_num,
                    i + 1, 0.0, 0.0);
  }
  return c;
}

/// Exact equality — both sides are produced by the same deterministic
/// pipeline, so even the doubles must match bit-for-bit.
bool RowsEqual(const std::vector<backend::ResultRow>& a,
               const std::vector<backend::ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].coords != b[i].coords || a[i].sum != b[i].sum ||
        a[i].count != b[i].count || a[i].min_v != b[i].min_v ||
        a[i].max_v != b[i].max_v) {
      return false;
    }
  }
  return true;
}

void ExpectChunkConsistent(const ChunkHandle& h) {
  ASSERT_NE(h, nullptr);
  for (size_t i = 0; i < h->cols.size(); ++i) {
    const AggTuple row = h->cols.RowAt(i);
    ASSERT_EQ(row.coords[0], h->group_by_id);
    ASSERT_EQ(row.coords[1], static_cast<uint32_t>(h->chunk_num));
    ASSERT_DOUBLE_EQ(row.sum,
                     static_cast<double>(h->group_by_id) * 1000 +
                         static_cast<double>(h->chunk_num));
    ASSERT_EQ(row.count, i + 1);
  }
}

// ------------------------- sharded cache hammering --------------------------

TEST(CacheConcurrencyTest, HammerLookupInsertClearKeepsInvariants) {
  // Budget small enough that the 8 threads constantly evict each other.
  constexpr uint64_t kCapacity = 64 * 1024;
  ChunkCache cache(kCapacity, "benefit-clock", /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<bool> budget_violated{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &budget_violated, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint32_t gb = static_cast<uint32_t>((t + i) % 4);
        const uint64_t chunk = static_cast<uint64_t>(i % 97);
        switch (i % 5) {
          case 0:
          case 1:
            cache.Insert(MakeChunk(gb, chunk, 1 + i % 16));
            break;
          case 2:
          case 3: {
            ChunkHandle h = cache.Lookup(gb, chunk, 0);
            if (h != nullptr) ExpectChunkConsistent(h);
            break;
          }
          case 4:
            if (i % 1000 == 4) {
              cache.Clear();
            } else {
              cache.Contains(gb, chunk, 0);
            }
            break;
        }
        if (cache.bytes_used() > cache.capacity_bytes()) {
          budget_violated.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(budget_violated.load());
  EXPECT_LE(cache.bytes_used(), cache.capacity_bytes());

  // Per-group-by counts must agree with a full enumeration of keys.
  uint64_t by_group = 0;
  for (uint32_t gb = 0; gb < 4; ++gb) by_group += cache.CountForGroupBy(gb);
  EXPECT_EQ(by_group, cache.num_chunks());

  cache::ChunkCacheStats s = cache.stats();
  EXPECT_EQ(s.shards.size(), 8u);
  EXPECT_GT(s.lookups, 0u);
  EXPECT_GT(s.insertions, 0u);
  uint64_t shard_bytes = 0;
  for (const auto& shard : s.shards) shard_bytes += shard.bytes_used;
  EXPECT_EQ(shard_bytes, cache.bytes_used());
}

TEST(CacheConcurrencyTest, DisjointWritersLandEveryChunk) {
  // Huge budget: nothing evicts, so every insert must be present at the end
  // and shard accounting must add up exactly.
  ChunkCache cache(1ull << 30, "lru", /*num_shards=*/16);
  constexpr int kThreads = 8;
  constexpr int kChunks = 100;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int c = 0; c < kChunks; ++c) {
        cache.Insert(MakeChunk(static_cast<uint32_t>(t), c, 4));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.num_chunks(), static_cast<size_t>(kThreads * kChunks));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(cache.CountForGroupBy(t), static_cast<uint64_t>(kChunks));
    for (int c = 0; c < kChunks; ++c) {
      ChunkHandle h = cache.Lookup(t, c, 0);
      ExpectChunkConsistent(h);
    }
  }
}

// ----------------------------- pinned handles -------------------------------

TEST(CacheConcurrencyTest, HandleSurvivesEvictionUnderLookup) {
  // Regression test for the pointer-returning Lookup of the serial cache:
  // a handle obtained before a burst of inserts must keep its rows valid
  // even after the entry is evicted and replaced.
  ChunkCache cache(8 * 1024, "lru", /*num_shards=*/1);
  cache.Insert(MakeChunk(1, 7, 8));
  ChunkHandle pinned = cache.Lookup(1, 7, 0);
  ASSERT_NE(pinned, nullptr);

  // Evict everything (each newcomer is ~half the budget).
  for (int i = 0; i < 64; ++i) {
    cache.Insert(MakeChunk(2, i, 40));
  }
  EXPECT_EQ(cache.Lookup(1, 7, 0), nullptr) << "entry should have been evicted";

  // The pinned handle still reads the original data.
  ExpectChunkConsistent(pinned);
  EXPECT_EQ(pinned->cols.size(), 8u);

  // Replacing the same key mints a fresh object; the old pin is untouched.
  cache.Insert(MakeChunk(1, 7, 3));
  ChunkHandle fresh = cache.Lookup(1, 7, 0);
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh.get(), pinned.get());
  EXPECT_EQ(pinned->cols.size(), 8u);
  EXPECT_EQ(fresh->cols.size(), 3u);
}

TEST(CacheConcurrencyTest, ReadersValidateWhileWriterEvicts) {
  constexpr uint64_t kCapacity = 32 * 1024;
  ChunkCache cache(kCapacity, "clock", /*num_shards=*/4);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> validated{0};

  std::thread writer([&] {
    for (int round = 0; !stop.load(std::memory_order_relaxed); ++round) {
      // Each round overwrites the same 64-key working set with fresh rows,
      // forcing constant eviction + replacement under the tiny budget.
      cache.Insert(MakeChunk(round % 3, round % 64, 8 + round % 32));
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        ChunkHandle h = cache.Lookup(i % 3, i % 64, 0);
        if (h == nullptr) continue;
        ExpectChunkConsistent(h);  // rows must be internally consistent
        validated.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  writer.join();

  EXPECT_GT(validated.load(), 0u);
  EXPECT_LE(cache.bytes_used(), kCapacity);
}

// ------------------- parallel pipeline vs serial fidelity -------------------

class PipelineFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 20000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<ChunkingScheme>(std::move(scheme).value());

    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 61;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);

    pool_ = std::make_unique<storage::BufferPool>(&disk_, 4096);
    auto file =
        backend::ChunkedFile::BulkLoad(pool_.get(), scheme_.get(), tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(
        pool_.get(), file_.get(), scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  static void ExpectIdentical(const std::vector<backend::ChunkData>& a,
                              const std::vector<backend::ChunkData>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].chunk_num, b[i].chunk_num) << "chunk slot " << i;
      ASSERT_EQ(a[i].cols.size(), b[i].cols.size()) << "chunk " << i;
      for (size_t r = 0; r < a[i].cols.size(); ++r) {
        const AggTuple x = a[i].cols.RowAt(r);
        const AggTuple y = b[i].cols.RowAt(r);
        ASSERT_EQ(x.coords, y.coords) << "chunk " << i << " row " << r;
        ASSERT_DOUBLE_EQ(x.sum, y.sum) << "chunk " << i << " row " << r;
        ASSERT_EQ(x.count, y.count) << "chunk " << i << " row " << r;
        ASSERT_DOUBLE_EQ(x.min_v, y.min_v) << "chunk " << i << " row " << r;
        ASSERT_DOUBLE_EQ(x.max_v, y.max_v) << "chunk " << i << " row " << r;
      }
    }
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<ChunkingScheme> scheme_;
  std::vector<storage::Tuple> tuples_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

TEST_F(PipelineFixture, ParallelComputeChunksMatchesSerialRowForRow) {
  const GroupBySpec target{{2, 1, 2, 1}, 4};
  const uint64_t total = scheme_->GridFor(target).num_chunks();
  std::vector<uint64_t> chunk_nums;
  for (uint64_t c = 0; c < total; ++c) chunk_nums.push_back(c);

  WorkCounters serial_work;
  auto serial = engine_->ComputeChunks(target, chunk_nums, {}, &serial_work,
                                       /*executor=*/nullptr);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(4);
  WorkCounters parallel_work;
  auto parallel =
      engine_->ComputeChunks(target, chunk_nums, {}, &parallel_work, &pool);
  ASSERT_TRUE(parallel.ok());

  // Rows are canonically sorted inside each chunk, and output slot i is
  // chunk_nums[i] in both modes, so the comparison is bit-for-bit.
  ExpectIdentical(*parallel, *serial);
  EXPECT_EQ(parallel_work.tuples_processed, serial_work.tuples_processed);
}

TEST_F(PipelineFixture, ConcurrentClientsMatchSerialManager) {
  // A serial reference manager answers a deterministic query stream; then
  // 4 client threads replay the same stream against a parallel manager
  // (worker pool, sharded cache, async prefetch). Every answer must match.
  workload::WorkloadOptions wopts;
  wopts.seed = 99;
  constexpr int kQueries = 48;
  std::vector<StarJoinQuery> queries;
  {
    workload::QueryGenerator gen(schema_.get(), wopts);
    for (int i = 0; i < kQueries; ++i) queries.push_back(gen.Next());
  }

  ChunkManagerOptions serial_opts;
  serial_opts.cache_bytes = 8ull << 20;
  core::ChunkCacheManager serial_mgr(engine_.get(), serial_opts);
  std::vector<std::vector<backend::ResultRow>> want(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryStats st;
    auto rows = serial_mgr.Execute(queries[i], &st);
    ASSERT_TRUE(rows.ok());
    want[i] = std::move(*rows);
  }

  ChunkManagerOptions par_opts = serial_opts;
  par_opts.num_workers = 4;
  par_opts.cache_shards = 8;
  par_opts.enable_drill_down_prefetch = true;  // exercise async prefetch
  core::ChunkCacheManager par_mgr(engine_.get(), par_opts);
  ASSERT_NE(par_mgr.executor(), nullptr);

  constexpr int kClients = 4;
  std::atomic<size_t> next{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        QueryStats st;
        auto rows = par_mgr.Execute(queries[i], &st);
        if (!rows.ok() || !RowsEqual(*rows, want[i])) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  par_mgr.DrainPrefetch();

  EXPECT_EQ(mismatches.load(), 0);
  cache::ChunkCacheStats s = par_mgr.StatsSnapshot();
  EXPECT_EQ(s.shards.size(), 8u);
  EXPECT_GT(s.exec_tasks_run, 0u);
  EXPECT_EQ(s.exec_steal_queue_depth, 0u);
}

}  // namespace
}  // namespace chunkcache
