#include <gtest/gtest.h>

#include <vector>

#include "cache/chunk_cache.h"
#include "cache/query_cache.h"
#include "cache/replacement.h"

namespace chunkcache::cache {
namespace {

using backend::NonGroupByPredicate;
using backend::StarJoinQuery;
using chunks::GroupBySpec;
using schema::OrdinalRange;
using storage::AggTuple;

// ------------------------------- LruPolicy ----------------------------------

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  LruPolicy p;
  p.OnInsert(1, 1.0);
  p.OnInsert(2, 1.0);
  p.OnInsert(3, 1.0);
  EXPECT_EQ(p.PickVictim(1.0), 1u);
  p.OnAccess(1);  // 2 is now the oldest
  EXPECT_EQ(p.PickVictim(1.0), 2u);
  p.OnErase(2);
  EXPECT_EQ(p.PickVictim(1.0), 3u);
  EXPECT_EQ(p.size(), 2u);
}

TEST(LruPolicyTest, EmptyReturnsNothing) {
  LruPolicy p;
  EXPECT_FALSE(p.PickVictim(1.0).has_value());
  p.OnInsert(1, 1.0);
  p.OnErase(1);
  EXPECT_FALSE(p.PickVictim(1.0).has_value());
}

// ------------------------------ ClockPolicy ---------------------------------

TEST(ClockPolicyTest, SecondChance) {
  ClockPolicy p;
  p.OnInsert(1, 1.0);
  p.OnInsert(2, 1.0);
  p.OnInsert(3, 1.0);
  // All have their reference bit set; first sweep clears 1, 2, 3 then
  // evicts 1 (first unreferenced under the arm).
  EXPECT_EQ(p.PickVictim(1.0), 1u);
  p.OnErase(1);
  // 2 and 3 now have cleared bits; accessing 2 saves it.
  p.OnAccess(2);
  EXPECT_EQ(p.PickVictim(1.0), 3u);
}

TEST(ClockPolicyTest, SurvivesManyErasures) {
  ClockPolicy p;
  for (uint64_t i = 0; i < 100; ++i) p.OnInsert(i, 1.0);
  for (uint64_t i = 0; i < 99; ++i) p.OnErase(i);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.PickVictim(1.0), 99u);
}

// --------------------------- BenefitClockPolicy -----------------------------

TEST(BenefitClockPolicyTest, LowBenefitEvictedBeforeHigh) {
  BenefitClockPolicy p;
  p.OnInsert(1, 100.0);  // expensive chunk
  p.OnInsert(2, 1.0);    // cheap chunk
  p.OnInsert(3, 1.0);
  // Incoming benefit 1.0: cheap entries drain after one sweep, the
  // expensive one survives ~100 sweeps.
  auto v = p.PickVictim(1.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(*v, 1u);
}

TEST(BenefitClockPolicyTest, ReaccessResetsWeight) {
  BenefitClockPolicy p;
  p.OnInsert(1, 3.0);
  p.OnInsert(2, 3.0);
  // First probe drains both weights to zero and nominates 1.
  auto v1 = p.PickVictim(3.0);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, 1u);
  // A hit on 1 restores its weight, so the next victim is 2.
  p.OnAccess(1);
  auto v2 = p.PickVictim(3.0);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, 2u);
}

TEST(BenefitClockPolicyTest, BoundedSweepFallsBackToMinWeight) {
  BenefitClockPolicy p;
  p.OnInsert(1, 1e9);
  p.OnInsert(2, 2e9);
  // Tiny incoming benefit would take forever to drain; the bounded sweep
  // must still nominate the smaller-weight entry.
  auto v = p.PickVictim(1e-3);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
}

TEST(BenefitClockPolicyTest, ZeroIncomingBenefitStillTerminates) {
  BenefitClockPolicy p;
  p.OnInsert(1, 5.0);
  EXPECT_TRUE(p.PickVictim(0.0).has_value());
}

TEST(MakePolicyTest, Factory) {
  EXPECT_EQ(MakePolicy("lru")->name(), "lru");
  EXPECT_EQ(MakePolicy("clock")->name(), "clock");
  EXPECT_EQ(MakePolicy("benefit-clock")->name(), "benefit-clock");
  EXPECT_EQ(MakePolicy("nonsense"), nullptr);
}

// -------------------------------- ChunkCache --------------------------------

CachedChunk MakeChunk(uint32_t gb, uint64_t num, uint64_t filter,
                      double benefit, size_t rows) {
  CachedChunk c;
  c.group_by_id = gb;
  c.chunk_num = num;
  c.filter_hash = filter;
  c.benefit = benefit;
  c.cols = storage::AggColumns(1);
  for (size_t i = 0; i < rows; ++i) {
    const uint32_t coord = static_cast<uint32_t>(i);
    c.cols.PushCell(&coord, static_cast<double>(num), 1, 0.0, 0.0);
  }
  return c;
}

TEST(ChunkCacheTest, InsertLookupMiss) {
  ChunkCache cache(1 << 20, MakePolicy("lru"));
  EXPECT_EQ(cache.Lookup(1, 5, 0), nullptr);
  cache.Insert(MakeChunk(1, 5, 0, 1.0, 10));
  const ChunkHandle hit = cache.Lookup(1, 5, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cols.size(), 10u);
  EXPECT_DOUBLE_EQ(hit->cols.sums()[0], 5.0);
  EXPECT_EQ(cache.Lookup(1, 6, 0), nullptr);
  EXPECT_EQ(cache.Lookup(2, 5, 0), nullptr);
  EXPECT_EQ(cache.stats().lookups, 4u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ChunkCacheTest, FilterHashIsolatesEntries) {
  ChunkCache cache(1 << 20, MakePolicy("lru"));
  cache.Insert(MakeChunk(1, 5, 0, 1.0, 4));
  cache.Insert(MakeChunk(1, 5, 777, 1.0, 9));
  const ChunkHandle unfiltered = cache.Lookup(1, 5, 0);
  const ChunkHandle filtered = cache.Lookup(1, 5, 777);
  ASSERT_NE(unfiltered, nullptr);
  ASSERT_NE(filtered, nullptr);
  EXPECT_EQ(unfiltered->cols.size(), 4u);
  EXPECT_EQ(filtered->cols.size(), 9u);
  EXPECT_EQ(cache.num_chunks(), 2u);
}

TEST(ChunkCacheTest, ReinsertReplaces) {
  ChunkCache cache(1 << 20, MakePolicy("lru"));
  cache.Insert(MakeChunk(1, 5, 0, 1.0, 4));
  cache.Insert(MakeChunk(1, 5, 0, 1.0, 8));
  EXPECT_EQ(cache.num_chunks(), 1u);
  EXPECT_EQ(cache.Lookup(1, 5, 0)->cols.size(), 8u);
}

TEST(ChunkCacheTest, EvictsWhenOverBudget) {
  // Every 10-row chunk from MakeChunk has the same columnar byte size.
  const uint64_t entry_bytes = MakeChunk(1, 0, 0, 1.0, 10).ByteSize();
  ChunkCache cache(entry_bytes * 3, MakePolicy("lru"));
  for (uint64_t i = 0; i < 5; ++i) {
    cache.Insert(MakeChunk(1, i, 0, 1.0, 10));
  }
  EXPECT_EQ(cache.num_chunks(), 3u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_LE(cache.bytes_used(), cache.capacity_bytes());
  // LRU: the oldest two (0, 1) are gone.
  EXPECT_EQ(cache.Lookup(1, 0, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 1, 0), nullptr);
  EXPECT_NE(cache.Lookup(1, 4, 0), nullptr);
}

TEST(ChunkCacheTest, RejectsChunkLargerThanCache) {
  ChunkCache cache(256, MakePolicy("lru"));
  cache.Insert(MakeChunk(1, 0, 0, 1.0, 1000));
  EXPECT_EQ(cache.num_chunks(), 0u);
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(ChunkCacheTest, BenefitPolicyKeepsExpensiveChunks) {
  const uint64_t entry_bytes = MakeChunk(1, 0, 0, 1.0, 10).ByteSize();
  ChunkCache cache(entry_bytes * 4, MakePolicy("benefit-clock"));
  cache.Insert(MakeChunk(9, 0, 0, 1000.0, 10));  // highly aggregated chunk
  for (uint64_t i = 0; i < 50; ++i) {
    cache.Insert(MakeChunk(1, i, 0, 1.0, 10));  // stream of cheap chunks
  }
  // The expensive chunk must have survived the stream.
  EXPECT_NE(cache.Lookup(9, 0, 0), nullptr);
}

TEST(ChunkCacheTest, CountForGroupByTracksContents) {
  ChunkCache cache(1 << 20, MakePolicy("lru"));
  cache.Insert(MakeChunk(1, 0, 0, 1.0, 4));
  cache.Insert(MakeChunk(1, 1, 0, 1.0, 4));
  cache.Insert(MakeChunk(2, 0, 0, 1.0, 4));
  EXPECT_EQ(cache.CountForGroupBy(1), 2u);
  EXPECT_EQ(cache.CountForGroupBy(2), 1u);
  EXPECT_EQ(cache.CountForGroupBy(3), 0u);
  cache.Clear();
  EXPECT_EQ(cache.CountForGroupBy(1), 0u);
  EXPECT_EQ(cache.num_chunks(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ChunkCacheTest, ContainsDoesNotTouchStats) {
  ChunkCache cache(1 << 20, MakePolicy("lru"));
  cache.Insert(MakeChunk(1, 0, 0, 1.0, 4));
  const auto before = cache.stats();
  EXPECT_TRUE(cache.Contains(1, 0, 0));
  EXPECT_FALSE(cache.Contains(1, 1, 0));
  EXPECT_EQ(cache.stats().lookups, before.lookups);
  EXPECT_EQ(cache.stats().hits, before.hits);
}

// -------------------------------- QueryCache --------------------------------

StarJoinQuery MakeQuery(std::array<uint8_t, 4> levels,
                        std::array<OrdinalRange, 4> sel) {
  StarJoinQuery q;
  q.group_by.num_dims = 4;
  for (int d = 0; d < 4; ++d) {
    q.group_by.levels[d] = levels[d];
    q.selection[d] = sel[d];
  }
  return q;
}

TEST(QueryContainsTest, ContainmentRules) {
  StarJoinQuery big = MakeQuery({1, 1, 1, 1},
                                {OrdinalRange{0, 10}, OrdinalRange{0, 10},
                                 OrdinalRange{0, 10}, OrdinalRange{0, 10}});
  StarJoinQuery small = MakeQuery({1, 1, 1, 1},
                                  {OrdinalRange{2, 8}, OrdinalRange{0, 10},
                                   OrdinalRange{5, 5}, OrdinalRange{1, 9}});
  EXPECT_TRUE(QueryContains(big, small));
  EXPECT_FALSE(QueryContains(small, big));
  EXPECT_TRUE(QueryContains(big, big));

  // Overlap without containment (the paper's Q3 case).
  StarJoinQuery shifted = MakeQuery({1, 1, 1, 1},
                                    {OrdinalRange{5, 15}, OrdinalRange{0, 10},
                                     OrdinalRange{0, 10}, OrdinalRange{0, 10}});
  EXPECT_FALSE(QueryContains(big, shifted));

  // Different group-by level: no reuse even if ranges nest.
  StarJoinQuery other_level = MakeQuery(
      {2, 1, 1, 1}, {OrdinalRange{2, 8}, OrdinalRange{0, 10},
                     OrdinalRange{5, 5}, OrdinalRange{1, 9}});
  EXPECT_FALSE(QueryContains(big, other_level));
}

TEST(QueryContainsTest, NonGroupByMustMatchExactly) {
  StarJoinQuery a = MakeQuery({1, 1, 1, 1},
                              {OrdinalRange{0, 10}, OrdinalRange{0, 10},
                               OrdinalRange{0, 10}, OrdinalRange{0, 10}});
  StarJoinQuery b = a;
  b.selection[0] = OrdinalRange{2, 5};
  a.non_group_by.push_back(NonGroupByPredicate{2, 2, OrdinalRange{0, 3}});
  EXPECT_FALSE(QueryContains(a, b));  // b lacks the predicate
  b.non_group_by.push_back(NonGroupByPredicate{2, 2, OrdinalRange{0, 3}});
  EXPECT_TRUE(QueryContains(a, b));
  b.non_group_by[0].range = OrdinalRange{0, 4};  // different range
  EXPECT_FALSE(QueryContains(a, b));
}

TEST(QueryCacheTest, HitOnContainedMissOnOverlap) {
  QueryCache cache(1 << 20, MakePolicy("lru"));
  CachedQuery entry;
  entry.query = MakeQuery({1, 1, 1, 1},
                          {OrdinalRange{0, 10}, OrdinalRange{0, 10},
                           OrdinalRange{0, 10}, OrdinalRange{0, 10}});
  entry.benefit = 1.0;
  entry.rows.resize(3);
  cache.Insert(std::move(entry));

  StarJoinQuery contained = MakeQuery(
      {1, 1, 1, 1}, {OrdinalRange{1, 5}, OrdinalRange{2, 7},
                     OrdinalRange{0, 10}, OrdinalRange{0, 10}});
  EXPECT_NE(cache.FindContaining(contained), nullptr);

  StarJoinQuery overlapping = MakeQuery(
      {1, 1, 1, 1}, {OrdinalRange{5, 15}, OrdinalRange{0, 10},
                     OrdinalRange{0, 10}, OrdinalRange{0, 10}});
  EXPECT_EQ(cache.FindContaining(overlapping), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().lookups, 2u);
}

TEST(QueryCacheTest, StoresOverlappingQueriesRedundantly) {
  // The documented weakness: two overlapping queries both occupy space.
  QueryCache cache(1 << 20, MakePolicy("lru"));
  for (uint32_t s = 0; s < 3; ++s) {
    CachedQuery entry;
    entry.query = MakeQuery(
        {1, 1, 1, 1},
        {OrdinalRange{s, s + 10}, OrdinalRange{0, 10}, OrdinalRange{0, 10},
         OrdinalRange{0, 10}});
    entry.benefit = 1.0;
    entry.rows.resize(100);
    cache.Insert(std::move(entry));
  }
  EXPECT_EQ(cache.num_queries(), 3u);
}

TEST(QueryCacheTest, IdenticalQueryReplaces) {
  QueryCache cache(1 << 20, MakePolicy("lru"));
  for (int i = 0; i < 2; ++i) {
    CachedQuery entry;
    entry.query = MakeQuery({1, 1, 1, 1},
                            {OrdinalRange{0, 5}, OrdinalRange{0, 5},
                             OrdinalRange{0, 5}, OrdinalRange{0, 5}});
    entry.benefit = 1.0;
    entry.rows.resize(10 * (i + 1));
    cache.Insert(std::move(entry));
  }
  EXPECT_EQ(cache.num_queries(), 1u);
}

TEST(QueryCacheTest, EvictsWithinBudget) {
  CachedQuery probe;
  probe.rows.resize(50);
  const uint64_t entry_bytes = probe.ByteSize();
  QueryCache cache(entry_bytes * 2, MakePolicy("lru"));
  for (uint32_t s = 0; s < 5; ++s) {
    CachedQuery entry;
    entry.query = MakeQuery(
        {1, 1, 1, 1},
        {OrdinalRange{s * 20, s * 20 + 5}, OrdinalRange{0, 10},
         OrdinalRange{0, 10}, OrdinalRange{0, 10}});
    entry.benefit = 1.0;
    entry.rows.resize(50);
    cache.Insert(std::move(entry));
  }
  EXPECT_LE(cache.bytes_used(), cache.capacity_bytes());
  EXPECT_EQ(cache.num_queries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 3u);
}

}  // namespace
}  // namespace chunkcache::cache
