// Whole-system integration tests: differential testing of the three middle
// tiers against each other under sustained random workloads with cache
// pressure, persistence round trips through the real-file disk manager,
// and stress on the cache under a pathologically small backend pool.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "core/chunk_cache_manager.h"
#include "core/query_cache_manager.h"
#include "index/btree.h"
#include "schema/synthetic.h"
#include "sql/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace chunkcache {
namespace {

using backend::ResultRow;
using backend::StarJoinQuery;
using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using storage::AggTuple;
using storage::Tuple;

struct FullSystem {
  std::unique_ptr<storage::InMemoryDiskManager> disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<schema::StarSchema> schema;
  std::unique_ptr<ChunkingScheme> scheme;
  std::unique_ptr<backend::ChunkedFile> file;
  std::unique_ptr<backend::BackendEngine> engine;

  static FullSystem Make(uint64_t tuples, uint32_t pool_frames,
                         double fraction = 0.15, uint64_t seed = 31) {
    FullSystem sys;
    sys.disk = std::make_unique<storage::InMemoryDiskManager>();
    sys.pool = std::make_unique<storage::BufferPool>(sys.disk.get(),
                                                     pool_frames);
    auto s = schema::BuildPaperSchema();
    CHUNKCACHE_CHECK(s.ok());
    sys.schema = std::make_unique<schema::StarSchema>(std::move(s).value());
    ChunkingOptions copts;
    copts.range_fraction = fraction;
    auto scheme = ChunkingScheme::Build(sys.schema.get(), copts, tuples);
    CHUNKCACHE_CHECK(scheme.ok());
    sys.scheme = std::make_unique<ChunkingScheme>(std::move(scheme).value());
    schema::FactGenOptions gen;
    gen.num_tuples = tuples;
    gen.seed = seed;
    auto file = backend::ChunkedFile::BulkLoad(
        sys.pool.get(), sys.scheme.get(),
        schema::GenerateFactTuples(*sys.schema, gen));
    CHUNKCACHE_CHECK(file.ok());
    sys.file = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    sys.engine = std::make_unique<backend::BackendEngine>(
        sys.pool.get(), sys.file.get(), sys.scheme.get());
    CHUNKCACHE_CHECK(sys.engine->BuildBitmapIndexes().ok());
    return sys;
  }
};

void ExpectSameRows(const std::vector<AggTuple>& a,
                    const std::vector<AggTuple>& b, uint32_t num_dims,
                    const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    for (uint32_t d = 0; d < num_dims; ++d) {
      ASSERT_EQ(a[i].coords[d], b[i].coords[d]) << context << " row " << i;
    }
    ASSERT_NEAR(a[i].sum, b[i].sum, 1e-6) << context << " row " << i;
    ASSERT_EQ(a[i].count, b[i].count) << context << " row " << i;
  }
}

// Differential test: under a long mixed-locality stream with heavy cache
// pressure (tiny caches force constant eviction), every tier must return
// identical result rows for every query.
class TierEquivalenceTest : public ::testing::TestWithParam<
                                std::tuple<const char*, uint64_t>> {};

TEST_P(TierEquivalenceTest, AllTiersAgreeUnderPressure) {
  const char* policy = std::get<0>(GetParam());
  const uint64_t cache_bytes = std::get<1>(GetParam());
  FullSystem sys = FullSystem::Make(30000, 4096);

  core::ChunkManagerOptions copts;
  copts.cache_bytes = cache_bytes;
  copts.policy = policy;
  core::ChunkCacheManager chunk_tier(sys.engine.get(), copts);
  core::QueryManagerOptions qopts;
  qopts.cache_bytes = cache_bytes;
  qopts.policy = policy;
  core::QueryCacheManager query_tier(sys.engine.get(), qopts);
  core::NoCacheManager none(sys.engine.get());

  workload::QueryGenerator gen(sys.schema.get(), workload::EqprStream(77));
  for (int i = 0; i < 120; ++i) {
    const StarJoinQuery q = gen.Next();
    core::QueryStats s1, s2, s3;
    auto a = chunk_tier.Execute(q, &s1);
    auto b = query_tier.Execute(q, &s2);
    auto c = none.Execute(q, &s3);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    ExpectSameRows(*a, *c, 4, "chunk vs none @" + std::to_string(i));
    ExpectSameRows(*b, *c, 4, "query vs none @" + std::to_string(i));
    // Sanity on stats invariants.
    EXPECT_EQ(s1.chunks_from_cache + s1.chunks_from_aggregation +
                  s1.chunks_from_backend,
              s1.chunks_needed);
    EXPECT_LE(s1.saved_fraction, 1.0);
    EXPECT_GE(s1.saved_fraction, 0.0);
  }
  // Caches stayed within budget throughout.
  EXPECT_LE(chunk_tier.chunk_cache().bytes_used(), cache_bytes);
  EXPECT_LE(query_tier.query_cache().bytes_used(), cache_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSizes, TierEquivalenceTest,
    ::testing::Combine(::testing::Values("lru", "clock", "benefit-clock"),
                       ::testing::Values(uint64_t{64} << 10,
                                         uint64_t{1} << 20)));

// Extensions must not change answers either.
TEST(IntegrationTest, ExtensionsPreserveAnswers) {
  FullSystem sys = FullSystem::Make(30000, 4096);
  core::ChunkManagerOptions plain_opts;
  core::ChunkManagerOptions ext_opts;
  ext_opts.enable_in_cache_aggregation = true;
  ext_opts.enable_drill_down_prefetch = true;
  ext_opts.prefetch_budget_chunks = 64;
  core::ChunkCacheManager plain(sys.engine.get(), plain_opts);
  core::ChunkCacheManager extended(sys.engine.get(), ext_opts);
  workload::QueryGenerator gen(sys.schema.get(),
                               workload::ProximityStream(78));
  for (int i = 0; i < 80; ++i) {
    const StarJoinQuery q = gen.Next();
    core::QueryStats s1, s2;
    auto a = plain.Execute(q, &s1);
    auto b = extended.Execute(q, &s2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameRows(*a, *b, 4, "plain vs extended @" + std::to_string(i));
  }
}

// Materialized aggregates at the backend must be answer-preserving under a
// workload too (they only change *where* chunks are computed from).
TEST(IntegrationTest, MaterializedAggregatesPreserveAnswers) {
  FullSystem sys = FullSystem::Make(30000, 4096);
  core::NoCacheManager reference(sys.engine.get());
  // Collect reference answers first (engine without materialized tables).
  workload::QueryGenerator gen1(sys.schema.get(), workload::EqprStream(79));
  std::vector<std::vector<ResultRow>> expected;
  std::vector<StarJoinQuery> queries;
  for (int i = 0; i < 60; ++i) {
    queries.push_back(gen1.Next());
    core::QueryStats s;
    auto rows = reference.Execute(queries.back(), &s);
    ASSERT_TRUE(rows.ok());
    expected.push_back(std::move(rows).value());
  }
  ASSERT_TRUE(sys.engine
                  ->MaterializeAggregate(chunks::GroupBySpec{{1, 1, 1, 1}, 4})
                  .ok());
  ASSERT_TRUE(sys.engine
                  ->MaterializeAggregate(chunks::GroupBySpec{{2, 1, 2, 1}, 4})
                  .ok());
  core::ChunkCacheManager tier(sys.engine.get(), core::ChunkManagerOptions{});
  for (size_t i = 0; i < queries.size(); ++i) {
    core::QueryStats s;
    auto rows = tier.Execute(queries[i], &s);
    ASSERT_TRUE(rows.ok());
    ExpectSameRows(*rows, expected[i], 4, "query " + std::to_string(i));
  }
}

// The whole backend survives a pathologically small buffer pool (16 pages):
// every structure pins at most a handful of pages at a time.
TEST(IntegrationTest, TinyBufferPool) {
  FullSystem sys = FullSystem::Make(15000, 16);
  core::ChunkCacheManager tier(sys.engine.get(), core::ChunkManagerOptions{});
  workload::QueryGenerator gen(sys.schema.get(), workload::EqprStream(80));
  for (int i = 0; i < 40; ++i) {
    core::QueryStats s;
    auto rows = tier.Execute(gen.Next(), &s);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString() << " @" << i;
  }
  EXPECT_GT(sys.pool->stats().evictions, 0u);
}

// Full persistence round trip through the real-file disk manager: bulk
// load + index a small system into one file, reopen it, and query again.
TEST(IntegrationTest, FileBackedPersistenceRoundTrip) {
  const std::string path =
      testing::TempDir() + "/chunkcache_integration.db";
  std::remove(path.c_str());

  auto s = schema::BuildPaperSchema();
  ASSERT_TRUE(s.ok());
  auto schema = std::make_unique<schema::StarSchema>(std::move(s).value());
  ChunkingOptions copts;
  copts.range_fraction = 0.2;
  auto scheme_or = ChunkingScheme::Build(schema.get(), copts, 5000);
  ASSERT_TRUE(scheme_or.ok());
  auto scheme = std::make_unique<ChunkingScheme>(std::move(scheme_or).value());

  uint32_t fact_file_id = 0;
  uint32_t btree_file_id = 0;
  std::vector<AggTuple> expected;
  const StarJoinQuery probe = [&] {
    StarJoinQuery q;
    q.group_by = chunks::GroupBySpec{{1, 1, 1, 1}, 4};
    q.selection[0] = {2, 20};
    q.selection[1] = {0, 24};
    q.selection[2] = {1, 3};
    q.selection[3] = {0, 9};
    return q;
  }();

  {
    auto disk_or = storage::FileDiskManager::Open(path);
    ASSERT_TRUE(disk_or.ok());
    storage::BufferPool pool(disk_or->get(), 512);
    schema::FactGenOptions gen;
    gen.num_tuples = 5000;
    auto file = backend::ChunkedFile::BulkLoad(
        &pool, scheme.get(), schema::GenerateFactTuples(*schema, gen));
    ASSERT_TRUE(file.ok());
    fact_file_id = file->fact_file().file_id();
    btree_file_id = file->chunk_index().file_id();
    ASSERT_TRUE(file->chunk_index().SyncMeta().ok());
    backend::BackendEngine engine(&pool, &*file, scheme.get());
    WorkCounters work;
    auto rows = engine.ExecuteStarJoin(probe, &work);
    ASSERT_TRUE(rows.ok());
    expected = std::move(rows).value();
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE((*disk_or)->Sync().ok());
  }

  // Reopen the database file and re-run the probe via the chunk interface.
  {
    auto disk_or = storage::FileDiskManager::Open(path);
    ASSERT_TRUE(disk_or.ok());
    storage::BufferPool pool(disk_or->get(), 512);
    auto fact = storage::FactFile::Open(&pool, fact_file_id);
    ASSERT_TRUE(fact.ok());
    EXPECT_EQ(fact->num_tuples(), 5000u);
    auto tree = index::BTree::Open(&pool, btree_file_id);
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE(tree->CheckInvariants().ok());

    // Recompute the probe by scanning chunk runs out of the reopened file.
    backend::HashAggregator agg(scheme.get(), probe.group_by);
    Status status = Status::OK();
    ASSERT_TRUE(tree->ScanRange(0, UINT64_MAX,
                                [&](uint64_t, const index::BTreePayload& p) {
                                  status = fact->ScanRange(
                                      p.v1, p.v2,
                                      [&](storage::RowId,
                                          const Tuple& t) {
                                        agg.AddBase(t);
                                        return true;
                                      });
                                  return status.ok();
                                })
                    .ok());
    ASSERT_TRUE(status.ok());
    auto rows = backend::FilterRows(agg.TakeRows(), 4, probe.selection);
    backend::SortRows(&rows, 4);
    ExpectSameRows(rows, expected, 4, "reopened file");
  }
  std::remove(path.c_str());
}

// SQL round trip at system level: text -> query -> execute -> ToSql ->
// re-parse -> execute gives identical rows.
TEST(IntegrationTest, SqlRoundTripEndToEnd) {
  FullSystem sys = FullSystem::Make(20000, 2048);
  core::ChunkCacheManager tier(sys.engine.get(), core::ChunkManagerOptions{});
  sql::SqlParser parser(sys.schema.get());
  const char* text =
      "SELECT D0.L2, D2.L2, SUM(dollar_sales) FROM Sales, D0, D2 "
      "WHERE D0.L2 BETWEEN 'D0.2.3' AND 'D0.2.30' "
      "AND D2.L2 BETWEEN 'D2.2.2' AND 'D2.2.17' "
      "AND D3.L1 BETWEEN 'D3.1.0' AND 'D3.1.4' "
      "GROUP BY D0.L2, D2.L2";
  auto q1 = parser.Parse(text);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  core::QueryStats s;
  auto rows1 = tier.Execute(*q1, &s);
  ASSERT_TRUE(rows1.ok());
  const std::string rendered = sql::ToSql(*sys.schema, *q1);
  auto q2 = parser.Parse(rendered);
  ASSERT_TRUE(q2.ok()) << rendered;
  auto rows2 = tier.Execute(*q2, &s);
  ASSERT_TRUE(rows2.ok());
  ExpectSameRows(*rows1, *rows2, 4, "sql round trip");
  EXPECT_TRUE(s.full_cache_hit);  // identical query -> cache hit
}

// Workload-driven CSR sanity: a Q100 stream against a large chunk cache
// must converge to a high CSR (the Section 6.1.4 effect, in miniature).
TEST(IntegrationTest, HotStreamConvergesToHighCsr) {
  FullSystem sys = FullSystem::Make(20000, 4096);
  core::ChunkManagerOptions opts;
  opts.cache_bytes = 64ull << 20;
  core::ChunkCacheManager tier(sys.engine.get(), opts);
  workload::WorkloadOptions wopts = workload::EqprStream(81);
  wopts.hot_access_prob = 1.0;
  workload::QueryGenerator gen(sys.schema.get(), wopts);
  core::CsrAccumulator cold, warm;
  for (int i = 0; i < 1000; ++i) {
    core::QueryStats s;
    ASSERT_TRUE(tier.Execute(gen.Next(), &s).ok());
    (i < 500 ? cold : warm).Record(s);
  }
  // Warm-phase savings must be substantial and clearly above the cold
  // phase (full convergence to the paper's 0.98 needs the full-scale
  // 5000-query run in bench_csr_simulation; this is the trend check).
  EXPECT_GT(warm.Csr(), 0.5);
  EXPECT_GT(warm.Csr(), cold.Csr() + 0.15);
}

}  // namespace
}  // namespace chunkcache
