#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "backend/agg_file.h"
#include "backend/aggregator.h"
#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "backend/star_join_query.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace chunkcache::backend {
namespace {

using chunks::ChunkCoords;
using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using chunks::GroupBySpec;
using schema::OrdinalRange;
using storage::AggTuple;
using storage::BufferPool;
using storage::InMemoryDiskManager;
using storage::Tuple;

/// Shared environment: paper schema, 20k synthetic tuples, a chunked file,
/// and an engine with bitmap indexes.
class BackendFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 20000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    ChunkingOptions opts;
    opts.range_fraction = 0.2;
    auto scheme = ChunkingScheme::Build(schema_.get(), opts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<ChunkingScheme>(std::move(scheme).value());

    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 17;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);

    pool_ = std::make_unique<BufferPool>(&disk_, 4096);
    auto file = ChunkedFile::BulkLoad(pool_.get(), scheme_.get(), tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<BackendEngine>(pool_.get(), file_.get(),
                                              scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  /// Brute-force evaluation of a star-join query over the in-memory tuples.
  std::vector<AggTuple> Naive(const StarJoinQuery& q) const {
    std::map<std::vector<uint32_t>, AggTuple> cells;
    for (const Tuple& t : tuples_) {
      bool pass = true;
      std::vector<uint32_t> coords(schema_->num_dims());
      for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
        const auto& h = schema_->dimension(d).hierarchy;
        coords[d] = h.AncestorAt(h.depth(), t.keys[d], q.group_by.levels[d]);
        if (!q.selection[d].Contains(coords[d])) pass = false;
      }
      for (const auto& p : q.non_group_by) {
        const auto& h = schema_->dimension(p.dim).hierarchy;
        const uint32_t v = h.AncestorAt(h.depth(), t.keys[p.dim], p.level);
        if (!p.range.Contains(v)) pass = false;
      }
      if (!pass) continue;
      AggTuple& cell = cells[coords];
      for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
        cell.coords[d] = coords[d];
      }
      cell.sum += t.measure;
      cell.count += 1;
    }
    std::vector<AggTuple> rows;
    for (auto& [k, v] : cells) rows.push_back(v);
    return rows;
  }

  static void ExpectRowsEqual(const std::vector<AggTuple>& got,
                              const std::vector<AggTuple>& want,
                              uint32_t num_dims) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      for (uint32_t d = 0; d < num_dims; ++d) {
        ASSERT_EQ(got[i].coords[d], want[i].coords[d]) << "row " << i;
      }
      EXPECT_NEAR(got[i].sum, want[i].sum, 1e-6) << "row " << i;
      EXPECT_EQ(got[i].count, want[i].count) << "row " << i;
    }
  }

  /// Full selection on every dimension at the given group-by.
  StarJoinQuery FullQuery(const GroupBySpec& gb) const {
    StarJoinQuery q;
    q.group_by = gb;
    for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
      const auto& h = schema_->dimension(d).hierarchy;
      q.selection[d] =
          OrdinalRange{0, h.LevelCardinality(gb.levels[d]) - 1};
    }
    return q;
  }

  InMemoryDiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<ChunkingScheme> scheme_;
  std::vector<Tuple> tuples_;
  std::unique_ptr<ChunkedFile> file_;
  std::unique_ptr<BackendEngine> engine_;
};

// ------------------------------- ChunkedFile --------------------------------

TEST_F(BackendFixture, ChunkRunsCoverAllTuplesDisjointly) {
  const GroupBySpec base = scheme_->BaseSpec();
  const auto& grid = scheme_->GridFor(base);
  uint64_t total = 0;
  storage::RowId expected_start = 0;
  for (uint64_t c = 0; c < grid.num_chunks(); ++c) {
    auto run = file_->ChunkRun(c);
    if (!run.ok()) {
      EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
      continue;
    }
    // Clustered: runs are laid out back to back in chunk order.
    EXPECT_EQ(run->first, expected_start);
    expected_start = run->first + run->second;
    total += run->second;
  }
  EXPECT_EQ(total, kTuples);
}

TEST_F(BackendFixture, ScanChunkYieldsOnlyThatChunksTuples) {
  const GroupBySpec base = scheme_->BaseSpec();
  const auto& grid = scheme_->GridFor(base);
  // Pick a handful of chunks spread over the grid.
  for (uint64_t c = 0; c < grid.num_chunks(); c += grid.num_chunks() / 7) {
    auto extent = scheme_->ChunkExtent(base, c);
    uint64_t visited = 0;
    ASSERT_TRUE(file_->ScanChunk(c, [&](const Tuple& t) {
                      for (uint32_t d = 0; d < 4; ++d) {
                        EXPECT_TRUE(extent[d].Contains(t.keys[d]));
                      }
                      ++visited;
                      return true;
                    })
                    .ok());
    auto run = file_->ChunkRun(c);
    if (run.ok()) {
      EXPECT_EQ(visited, run->second);
    } else {
      EXPECT_EQ(visited, 0u);
    }
  }
}

TEST_F(BackendFixture, ChunkScanCostProportionalToChunk) {
  // Reading one chunk must touch far fewer pages than the whole file.
  ASSERT_TRUE(pool_->EvictAll().ok());
  const auto before = disk_.stats();
  ASSERT_TRUE(file_->ScanChunk(0, [](const Tuple&) { return true; }).ok());
  const uint64_t chunk_pages = disk_.stats().reads - before.reads;
  EXPECT_LT(chunk_pages, file_->fact_file().num_data_pages() / 4);
}

TEST(ChunkedFileUnclustered, ChunkInterfaceUnsupported) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 256);
  auto s = schema::BuildPaperSchema();
  ASSERT_TRUE(s.ok());
  auto schema = std::make_unique<schema::StarSchema>(std::move(s).value());
  auto scheme = ChunkingScheme::Build(schema.get(), ChunkingOptions{}, 1000);
  ASSERT_TRUE(scheme.ok());
  schema::FactGenOptions gen;
  gen.num_tuples = 1000;
  auto tuples = schema::GenerateFactTuples(*schema, gen);
  auto file = ChunkedFile::BulkLoad(&pool, &*scheme, tuples,
                                    /*clustered=*/false);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(file->clustered());
  EXPECT_EQ(file->ChunkRun(0).status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(
      file->ScanChunk(0, [](const Tuple&) { return true; }).code(),
      StatusCode::kUnsupported);
  // The relational interface still works.
  uint64_t n = 0;
  ASSERT_TRUE(file->Scan([&](storage::RowId, const Tuple&) {
                    ++n;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(n, 1000u);
}

// -------------------------------- Aggregator --------------------------------

TEST_F(BackendFixture, HashAggregatorMatchesNaive) {
  GroupBySpec gb{{1, 1, 1, 1}, 4};
  HashAggregator agg(scheme_.get(), gb);
  for (const Tuple& t : tuples_) agg.AddBase(t);
  EXPECT_EQ(agg.rows_consumed(), kTuples);
  auto rows = agg.TakeRows();
  SortRows(&rows, 4);
  ExpectRowsEqual(rows, Naive(FullQuery(gb)), 4);
}

TEST_F(BackendFixture, MinMaxAggregatesMatchNaive) {
  GroupBySpec gb{{1, 0, 1, 0}, 4};
  HashAggregator agg(scheme_.get(), gb);
  for (const Tuple& t : tuples_) agg.AddBase(t);
  auto rows = agg.TakeRows();
  SortRows(&rows, 4);
  // Naive min/max per cell.
  std::map<std::pair<uint32_t, uint32_t>, std::pair<double, double>> ref;
  for (const Tuple& t : tuples_) {
    const auto& h0 = schema_->dimension(0).hierarchy;
    const auto& h2 = schema_->dimension(2).hierarchy;
    const auto key = std::make_pair(h0.AncestorAt(3, t.keys[0], 1),
                                    h2.AncestorAt(3, t.keys[2], 1));
    auto it = ref.find(key);
    if (it == ref.end()) {
      ref[key] = {t.measure, t.measure};
    } else {
      it->second.first = std::min(it->second.first, t.measure);
      it->second.second = std::max(it->second.second, t.measure);
    }
  }
  ASSERT_EQ(rows.size(), ref.size());
  for (const auto& r : rows) {
    const auto& [want_min, want_max] =
        ref.at(std::make_pair(r.coords[0], r.coords[2]));
    EXPECT_DOUBLE_EQ(r.min_v, want_min);
    EXPECT_DOUBLE_EQ(r.max_v, want_max);
    EXPECT_NEAR(r.Avg(), r.sum / r.count, 1e-12);
  }
}

TEST_F(BackendFixture, MinMaxSurviveReAggregation) {
  // min of mins == direct min (closure property for MIN/MAX).
  GroupBySpec mid{{2, 1, 2, 1}, 4};
  GroupBySpec coarse{{1, 0, 1, 0}, 4};
  HashAggregator to_mid(scheme_.get(), mid);
  for (const Tuple& t : tuples_) to_mid.AddBase(t);
  auto mid_rows = to_mid.TakeRows();
  HashAggregator via_mid(scheme_.get(), coarse);
  for (const AggTuple& r : mid_rows) via_mid.AddAgg(r, mid);
  auto indirect = via_mid.TakeRows();
  SortRows(&indirect, 4);

  HashAggregator direct_agg(scheme_.get(), coarse);
  for (const Tuple& t : tuples_) direct_agg.AddBase(t);
  auto direct = direct_agg.TakeRows();
  SortRows(&direct, 4);

  ASSERT_EQ(direct.size(), indirect.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct[i].min_v, indirect[i].min_v) << "row " << i;
    EXPECT_DOUBLE_EQ(direct[i].max_v, indirect[i].max_v) << "row " << i;
  }
}

TEST_F(BackendFixture, ReAggregationMatchesDirect) {
  // base -> mid, then mid -> coarse must equal base -> coarse.
  GroupBySpec mid{{2, 1, 2, 1}, 4};
  GroupBySpec coarse{{1, 0, 1, 1}, 4};
  HashAggregator to_mid(scheme_.get(), mid);
  for (const Tuple& t : tuples_) to_mid.AddBase(t);
  auto mid_rows = to_mid.TakeRows();

  HashAggregator via_mid(scheme_.get(), coarse);
  for (const AggTuple& r : mid_rows) via_mid.AddAgg(r, mid);
  auto rows = via_mid.TakeRows();
  SortRows(&rows, 4);
  ExpectRowsEqual(rows, Naive(FullQuery(coarse)), 4);
}

TEST(AggregatorHelpers, FilterAndSort) {
  std::vector<AggTuple> rows(3);
  rows[0].coords = {5, 1};
  rows[1].coords = {2, 9};
  rows[2].coords = {2, 3};
  std::array<OrdinalRange, storage::kMaxDims> sel{};
  sel[0] = OrdinalRange{0, 4};
  sel[1] = OrdinalRange{0, 5};
  auto kept = FilterRows(rows, 2, sel);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].coords[0], 2u);
  EXPECT_EQ(kept[0].coords[1], 3u);

  SortRows(&rows, 2);
  EXPECT_EQ(rows[0].coords[1], 3u);
  EXPECT_EQ(rows[1].coords[1], 9u);
  EXPECT_EQ(rows[2].coords[0], 5u);
}

// --------------------------------- AggFile ----------------------------------

TEST(AggFileTest, AppendGetScanRoundTrip) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 64);
  auto file = AggFile::Create(&pool, 4);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->rows_per_page(), storage::kPageSize / (4 * 4 + 32));
  for (uint32_t i = 0; i < 1000; ++i) {
    AggTuple row;
    row.coords = {i, i + 1, i + 2, i + 3};
    row.sum = i * 1.5;
    row.count = i;
    row.min_v = -static_cast<double>(i);
    row.max_v = i * 2.0;
    auto rid = file->Append(row);
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(*rid, i);
  }
  AggTuple row;
  ASSERT_TRUE(file->Get(500, &row).ok());
  EXPECT_EQ(row.coords[3], 503u);
  EXPECT_DOUBLE_EQ(row.sum, 750.0);
  EXPECT_DOUBLE_EQ(row.min_v, -500.0);
  EXPECT_DOUBLE_EQ(row.max_v, 1000.0);
  EXPECT_EQ(file->Get(1000, &row).code(), StatusCode::kOutOfRange);

  uint64_t visited = 0;
  ASSERT_TRUE(file->ScanRange(100, 50,
                              [&](const AggTuple& r) {
                                EXPECT_EQ(r.coords[0], 100 + visited);
                                ++visited;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(visited, 50u);
}

TEST(AggFileTest, ReopenAfterSync) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 64);
  uint32_t file_id;
  {
    auto file = AggFile::Create(&pool, 2);
    ASSERT_TRUE(file.ok());
    file_id = file->file_id();
    AggTuple row;
    row.coords = {1, 2};
    row.sum = 3;
    row.count = 4;
    ASSERT_TRUE(file->Append(row).ok());
    ASSERT_TRUE(file->SyncHeader().ok());
  }
  auto file = AggFile::Open(&pool, file_id);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->num_rows(), 1u);
  EXPECT_EQ(file->num_dims(), 2u);
}

// ---------------------------------- Engine ----------------------------------

TEST_F(BackendFixture, ComputeChunksReconstructsFullGroupBy) {
  // Computing *all* chunks of a group-by and concatenating them must equal
  // the naive full aggregation.
  GroupBySpec gb{{1, 1, 1, 1}, 4};
  const auto& grid = scheme_->GridFor(gb);
  std::vector<uint64_t> nums(grid.num_chunks());
  for (uint64_t i = 0; i < nums.size(); ++i) nums[i] = i;
  WorkCounters work;
  auto data = engine_->ComputeChunks(gb, nums, {}, &work);
  ASSERT_TRUE(data.ok());
  std::vector<AggTuple> rows;
  for (const auto& c : *data) {
    // Every row must lie within its chunk's extent.
    auto extent = scheme_->ChunkExtent(gb, c.chunk_num);
    for (size_t i = 0; i < c.cols.size(); ++i) {
      const AggTuple r = c.cols.RowAt(i);
      for (uint32_t d = 0; d < 4; ++d) {
        EXPECT_TRUE(extent[d].Contains(r.coords[d]));
      }
    }
    c.cols.AppendToRows(&rows);
  }
  SortRows(&rows, 4);
  ExpectRowsEqual(rows, Naive(FullQuery(gb)), 4);
  EXPECT_GT(work.tuples_processed, 0u);
}

TEST_F(BackendFixture, ComputeSingleChunkTouchesFewPages) {
  GroupBySpec gb{{2, 2, 2, 2}, 4};
  ASSERT_TRUE(pool_->EvictAll().ok());
  WorkCounters work;
  auto data = engine_->ComputeChunks(gb, {3}, {}, &work);
  ASSERT_TRUE(data.ok());
  // Cost of a chunk miss is proportional to the chunk, not the table
  // (Section 4.1 benefit 1).
  EXPECT_LT(work.pages_read, file_->fact_file().num_data_pages() / 4);
}

TEST_F(BackendFixture, ExecuteStarJoinMatchesNaiveOnRestrictedQuery) {
  StarJoinQuery q;
  q.group_by = GroupBySpec{{2, 1, 2, 1}, 4};
  q.selection[0] = OrdinalRange{10, 30};  // D0 level2 (50 values)
  q.selection[1] = OrdinalRange{5, 14};   // D1 level1 (25 values)
  q.selection[2] = OrdinalRange{2, 20};   // D2 level2 (25 values)
  q.selection[3] = OrdinalRange{0, 9};    // D3 level1 (10 values) = all
  WorkCounters work;
  auto rows = engine_->ExecuteStarJoin(q, &work);
  ASSERT_TRUE(rows.ok());
  ExpectRowsEqual(*rows, Naive(q), 4);
}

TEST_F(BackendFixture, BitmapAndScanPathsAgree) {
  StarJoinQuery q;
  q.group_by = GroupBySpec{{3, 2, 0, 0}, 4};
  q.selection[0] = OrdinalRange{12, 19};  // narrow: bitmap path
  q.selection[1] = OrdinalRange{0, 49};
  q.selection[2] = OrdinalRange{0, 0};
  q.selection[3] = OrdinalRange{0, 0};
  WorkCounters w1, w2;
  auto via_bitmap = engine_->ExecuteStarJoin(q, &w1);
  ASSERT_TRUE(via_bitmap.ok());
  // Force the scan path through a second engine with scan-only options.
  BackendOptions scan_only;
  scan_only.bitmap_selectivity_threshold = -1.0;
  BackendEngine scan_engine(pool_.get(), file_.get(), scheme_.get(),
                            scan_only);
  auto via_scan = scan_engine.ExecuteStarJoin(q, &w2);
  ASSERT_TRUE(via_scan.ok());
  ExpectRowsEqual(*via_bitmap, *via_scan, 4);
  ExpectRowsEqual(*via_bitmap, Naive(q), 4);
}

TEST_F(BackendFixture, NonGroupByPredicateFiltersBeforeAggregation) {
  StarJoinQuery q;
  q.group_by = GroupBySpec{{1, 0, 0, 0}, 4};  // by D0 level 1 only
  q.selection[0] = OrdinalRange{0, 24};
  q.selection[1] = OrdinalRange{0, 0};
  q.selection[2] = OrdinalRange{0, 0};
  q.selection[3] = OrdinalRange{0, 0};
  // Restrict D2 at its level 2 (not in the group-by).
  q.non_group_by.push_back(NonGroupByPredicate{2, 2, OrdinalRange{0, 7}});
  WorkCounters work;
  auto rows = engine_->ExecuteStarJoin(q, &work);
  ASSERT_TRUE(rows.ok());
  ExpectRowsEqual(*rows, Naive(q), 4);
  // And the chunk-computation path honors it too.
  const auto& grid = scheme_->GridFor(q.group_by);
  std::vector<uint64_t> nums(grid.num_chunks());
  for (uint64_t i = 0; i < nums.size(); ++i) nums[i] = i;
  WorkCounters w2;
  auto data = engine_->ComputeChunks(q.group_by, nums, q.non_group_by, &w2);
  ASSERT_TRUE(data.ok());
  std::vector<AggTuple> all;
  for (const auto& c : *data) c.cols.AppendToRows(&all);
  SortRows(&all, 4);
  ExpectRowsEqual(all, Naive(q), 4);
}

TEST_F(BackendFixture, ContradictoryFiltersGiveEmptyResult) {
  StarJoinQuery q = FullQuery(GroupBySpec{{1, 1, 1, 1}, 4});
  q.non_group_by.push_back(NonGroupByPredicate{0, 1, OrdinalRange{0, 3}});
  q.non_group_by.push_back(NonGroupByPredicate{0, 1, OrdinalRange{10, 12}});
  WorkCounters work;
  auto rows = engine_->ExecuteStarJoin(q, &work);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(BackendFixture, SelectivityIsProductOfFractions) {
  StarJoinQuery q = FullQuery(GroupBySpec{{1, 1, 1, 1}, 4});
  EXPECT_NEAR(engine_->Selectivity(q), 1.0, 1e-12);
  q.selection[0] = OrdinalRange{0, 4};  // 5 of 25 level-1 members = 20%
  EXPECT_NEAR(engine_->Selectivity(q), 0.2, 1e-12);
  q.selection[2] = OrdinalRange{1, 1};  // 1 of 5 = 20%
  EXPECT_NEAR(engine_->Selectivity(q), 0.04, 1e-12);
}

TEST_F(BackendFixture, MaterializedAggregateServesCoarserChunks) {
  // Pick a mid spec dense enough to actually aggregate (1250 cells vs 20k
  // tuples), so sourcing from it is visibly cheaper than from base.
  GroupBySpec mid{{1, 0, 1, 1}, 4};
  ASSERT_TRUE(engine_->MaterializeAggregate(mid).ok());
  EXPECT_EQ(engine_->MaterializeAggregate(mid).code(),
            StatusCode::kAlreadyExists);
  GroupBySpec coarse{{1, 0, 0, 0}, 4};
  const auto& grid = scheme_->GridFor(coarse);
  std::vector<uint64_t> nums(grid.num_chunks());
  for (uint64_t i = 0; i < nums.size(); ++i) nums[i] = i;

  WorkCounters with_mat;
  auto data = engine_->ComputeChunks(coarse, nums, {}, &with_mat);
  ASSERT_TRUE(data.ok());
  std::vector<AggTuple> rows;
  for (const auto& c : *data) c.cols.AppendToRows(&rows);
  SortRows(&rows, 4);
  ExpectRowsEqual(rows, Naive(FullQuery(coarse)), 4);

  // The materialized source must process far fewer rows than base would.
  BackendEngine base_only(pool_.get(), file_.get(), scheme_.get());
  WorkCounters from_base;
  auto data2 = base_only.ComputeChunks(coarse, nums, {}, &from_base);
  ASSERT_TRUE(data2.ok());
  EXPECT_LT(with_mat.tuples_processed, from_base.tuples_processed / 2);
}

TEST_F(BackendFixture, UnrestrictedQuerySkipsBitmaps) {
  // A full-cube query must not read any bitmap pages: the engine takes
  // the scan path (and even the restricted-dims loop skips full ranges).
  StarJoinQuery q = FullQuery(GroupBySpec{{1, 1, 1, 1}, 4});
  ASSERT_TRUE(pool_->FlushAll().ok());
  ASSERT_TRUE(pool_->EvictAll().ok());
  disk_.ResetStats();
  WorkCounters work;
  auto rows = engine_->ExecuteStarJoin(q, &work);
  ASSERT_TRUE(rows.ok());
  // Scan path: exactly the fact file's data pages (+header), no index I/O.
  EXPECT_LE(work.pages_read,
            uint64_t{file_->fact_file().num_data_pages()} + 2);
  EXPECT_EQ(work.tuples_processed, kTuples);
}

TEST_F(BackendFixture, HighSelectivityFallsBackToScan) {
  // Selectivity above the threshold must take the scan path even though
  // the query is restricted: tuples_processed equals the whole table.
  StarJoinQuery q = FullQuery(GroupBySpec{{1, 1, 1, 1}, 4});
  q.selection[0] = OrdinalRange{0, 19};  // 80% of D0 level 1
  ASSERT_GT(engine_->Selectivity(q), 0.25);
  WorkCounters work;
  auto rows = engine_->ExecuteStarJoin(q, &work);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(work.tuples_processed, kTuples);  // full scan visited all

  // Just under the threshold: bitmap path touches only matching tuples.
  StarJoinQuery narrow = FullQuery(GroupBySpec{{1, 1, 1, 1}, 4});
  narrow.selection[0] = OrdinalRange{0, 3};  // 16%
  ASSERT_LT(engine_->Selectivity(narrow), 0.25);
  WorkCounters w2;
  auto rows2 = engine_->ExecuteStarJoin(narrow, &w2);
  ASSERT_TRUE(rows2.ok());
  EXPECT_LT(w2.tuples_processed, kTuples / 2);
}

TEST_F(BackendFixture, ComputeChunksEmptyListAndEmptyChunk) {
  GroupBySpec gb{{3, 2, 3, 2}, 4};  // base level: sparse -> empty chunks
  WorkCounters work;
  auto none = engine_->ComputeChunks(gb, {}, {}, &work);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // Find an empty chunk (base grid has far more chunks than tuples at
  // this scale) and ask for it: the result is an empty row set, not an
  // error.
  const auto& grid = scheme_->GridFor(gb);
  for (uint64_t c = 0; c < grid.num_chunks(); ++c) {
    if (!file_->ChunkRun(c).ok()) {
      auto data = engine_->ComputeChunks(gb, {c}, {}, &work);
      ASSERT_TRUE(data.ok());
      ASSERT_EQ(data->size(), 1u);
      EXPECT_TRUE((*data)[0].cols.empty());
      return;
    }
  }
  GTEST_SKIP() << "no empty base chunk at this scale";
}

TEST_F(BackendFixture, MaterializeRejectsInvalidSpec) {
  GroupBySpec bogus{{7, 1, 1, 1}, 4};  // level 7 beyond D0's depth
  EXPECT_FALSE(engine_->MaterializeAggregate(bogus).ok());
}

}  // namespace
}  // namespace chunkcache::backend
