// Reproduces Figure 14: bitmap-index star-join performance on a randomly
// ordered fact file vs the chunked (multidimensionally clustered) file,
// across query selectivities. Expected shape (paper, Section 4.2): for
// selective queries the clustered file touches far fewer fact pages —
// matching tuples land in few chunks — while at low selectivity the two
// organizations converge (every page is touched either way).

#include <cstdio>
#include <memory>

#include "bench/common/experiment.h"
#include "core/query_cache_manager.h"

namespace chunkcache::bench {
namespace {

using backend::StarJoinQuery;
using schema::OrdinalRange;

struct Variant {
  std::unique_ptr<storage::InMemoryDiskManager> disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<backend::ChunkedFile> file;
  std::unique_ptr<backend::BackendEngine> engine;
};

Result<Variant> BuildVariant(const ExperimentConfig& config,
                             schema::StarSchema* schema,
                             chunks::ChunkingScheme* scheme, bool clustered) {
  Variant v;
  v.disk = std::make_unique<storage::InMemoryDiskManager>();
  v.pool = std::make_unique<storage::BufferPool>(v.disk.get(),
                                                 config.pool_frames);
  schema::FactGenOptions gen;
  gen.num_tuples = config.num_tuples;
  gen.seed = config.data_seed;
  std::vector<storage::Tuple> tuples = schema::GenerateFactTuples(*schema,
                                                                  gen);
  CHUNKCACHE_ASSIGN_OR_RETURN(
      backend::ChunkedFile file,
      backend::ChunkedFile::BulkLoad(v.pool.get(), scheme,
                                     std::move(tuples), clustered));
  v.file = std::make_unique<backend::ChunkedFile>(std::move(file));
  backend::BackendOptions bopts;
  bopts.bitmap_selectivity_threshold = 1.0;  // always take the bitmap path
  v.engine = std::make_unique<backend::BackendEngine>(
      v.pool.get(), v.file.get(), scheme, bopts);
  CHUNKCACHE_RETURN_IF_ERROR(v.engine->BuildBitmapIndexes());
  return v;
}

int Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Figure 14: bitmap performance, random vs chunked file");
  auto s = schema::BuildPaperSchema();
  if (!s.ok()) return 1;
  auto schema = std::make_unique<schema::StarSchema>(std::move(s).value());
  chunks::ChunkingOptions copts;
  copts.range_fraction = config.range_fraction;
  auto scheme_or = chunks::ChunkingScheme::Build(schema.get(), copts,
                                                 config.num_tuples);
  if (!scheme_or.ok()) return 1;
  auto scheme = std::make_unique<chunks::ChunkingScheme>(
      std::move(scheme_or).value());

  auto random_v = BuildVariant(config, schema.get(), scheme.get(),
                               /*clustered=*/false);
  auto chunked_v = BuildVariant(config, schema.get(), scheme.get(),
                                /*clustered=*/true);
  if (!random_v.ok() || !chunked_v.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }

  std::printf("%-22s %12s | %14s %14s | %14s %14s\n", "selection",
              "selectivity", "random pages", "random ms", "chunked pages",
              "chunked ms");

  // Range selections on D0 and D2 at base level of increasing width; each
  // query starts cold (buffer pool flushed), as on the paper's raw device.
  struct Shape {
    uint32_t w0;  // width on D0 (100 base values)
    uint32_t w2;  // width on D2 (50 base values)
  };
  for (const Shape& shape : {Shape{1, 1}, Shape{2, 2}, Shape{4, 4},
                             Shape{8, 8}, Shape{16, 16}, Shape{32, 25},
                             Shape{64, 50}, Shape{100, 50}}) {
    StarJoinQuery q;
    q.group_by = chunks::GroupBySpec{{3, 0, 3, 0}, 4};
    q.selection[0] = OrdinalRange{10, 10 + shape.w0 - 1};
    q.selection[1] = OrdinalRange{0, 0};
    q.selection[2] = OrdinalRange{5, 5 + shape.w2 - 1};
    q.selection[3] = OrdinalRange{0, 0};
    if (q.selection[0].end > 99) q.selection[0] = OrdinalRange{0, shape.w0 - 1};
    if (q.selection[2].end > 49) q.selection[2] = OrdinalRange{0, shape.w2 - 1};

    double pages[2], ms[2];
    int idx = 0;
    for (Variant* v : {&*random_v, &*chunked_v}) {
      if (!v->pool->FlushAll().ok() || !v->pool->EvictAll().ok()) return 1;
      v->disk->ResetStats();
      WorkCounters work;
      auto rows = v->engine->ExecuteStarJoin(q, &work);
      if (!rows.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rows.status().ToString().c_str());
        return 1;
      }
      // Report only fact-file page fetches' effect: total physical reads
      // minus the bitmap reads is dominated by tuple fetches; both
      // variants pay identical bitmap costs, so totals remain comparable.
      pages[idx] = static_cast<double>(work.pages_read);
      ms[idx] = config.cost_model.Cost(work.pages_read, work.pages_written,
                                       work.tuples_processed);
      ++idx;
    }
    const double selectivity =
        (static_cast<double>(shape.w0) / 100.0) *
        (static_cast<double>(shape.w2) / 50.0);
    char label[32];
    std::snprintf(label, sizeof(label), "D0[%u] x D2[%u]", shape.w0,
                  shape.w2);
    std::printf("%-22s %12.4f | %14.0f %14.1f | %14.0f %14.1f\n", label,
                selectivity, pages[0], ms[0], pages[1], ms[1]);
  }
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
