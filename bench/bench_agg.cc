// Measures the dense-grid aggregation kernel against the hash fallback
// and the coalesced-run I/O path against per-run reads.
//
// Two experiments:
//   1. Kernel microbench — the same per-chunk tuple batches are folded by
//      a dense-forced ChunkAggregator (dense_cell_limit = UINT64_MAX) and
//      a hash-forced one (dense_cell_limit = 0); reports rows/s for each
//      and the speedup. The acceptance bar is >= 2x on the paper's 4-d
//      schema.
//   2. End-to-end ComputeChunks latency at several chunk sizes
//      (range_fraction 0.05 / 0.1 / 0.2) for three engine configs:
//      default (dense kernels + coalesced I/O), hash-forced, and
//      coalescing disabled — plus the kernel/I/O counters.
//
// Results go to stdout as a table AND to BENCH_agg.json (machine
// readable; CI validates its schema). Honors CHUNKCACHE_BENCH_SCALE via
// ExperimentConfig::FromEnv like the other benches.

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/aggregator.h"
#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "bench/common/experiment.h"
#include "chunks/chunking_scheme.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace chunkcache::bench {
namespace {

using backend::AggKernelStats;
using backend::BackendEngine;
using backend::BackendOptions;
using backend::ChunkAggregator;
using backend::ChunkData;
using backend::ChunkedFile;
using chunks::ChunkCoords;
using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using chunks::GroupBySpec;
using storage::BufferPool;
using storage::InMemoryDiskManager;
using storage::Tuple;
using storage::TupleColumns;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KernelResult {
  double dense_rows_per_sec = 0;
  double hash_rows_per_sec = 0;
  double speedup = 0;
  uint64_t rows_folded = 0;
};

/// Routes every tuple to its target chunk once, then folds the identical
/// per-chunk batches through both kernels.
KernelResult RunKernelBench(const schema::StarSchema& schema,
                            const ChunkingScheme& scheme,
                            const std::vector<Tuple>& tuples,
                            const GroupBySpec& target, int reps) {
  std::map<uint64_t, TupleColumns> batches;
  for (const Tuple& t : tuples) {
    ChunkCoords coords{};
    for (uint32_t d = 0; d < target.num_dims; ++d) {
      const auto& h = schema.dimension(d).hierarchy;
      coords[d] = h.AncestorAt(h.depth(), t.keys[d], target.levels[d]);
    }
    TupleColumns& batch = batches[scheme.ChunkOfCell(target, coords)];
    batch.num_dims = target.num_dims;
    batch.PushTuple(t);
  }

  // One untimed warmup pass (faults in pages, warms caches), then the
  // best-of-reps rate — the standard way to keep a throughput microbench
  // stable against scheduler noise.
  auto fold_pass = [&](uint64_t dense_cell_limit) {
    uint64_t rows = 0;
    double sink = 0;
    const double t0 = NowMs();
    for (const auto& [chunk_num, batch] : batches) {
      ChunkAggregator agg(&scheme, target, chunk_num, dense_cell_limit);
      agg.AddBaseColumns(batch, nullptr, nullptr);
      rows += agg.rows_consumed();
      const storage::AggColumns out = agg.TakeColumns();
      if (!out.sums().empty()) sink += out.sums()[0];
    }
    const double ms = NowMs() - t0;
    if (sink == 0x1p60) std::printf("");  // keep the fold alive
    return std::pair<uint64_t, double>(rows, ms);
  };
  auto best_rate = [&](uint64_t dense_cell_limit, uint64_t* rows_out) {
    fold_pass(dense_cell_limit);  // warmup
    double best_ms = 0;
    for (int r = 0; r < reps; ++r) {
      const auto [rows, ms] = fold_pass(dense_cell_limit);
      *rows_out = rows;
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    return 1000.0 * static_cast<double>(*rows_out) / best_ms;
  };

  KernelResult res;
  uint64_t rows = 0;
  res.dense_rows_per_sec = best_rate(~0ull, &rows);
  res.rows_folded = rows;
  res.hash_rows_per_sec = best_rate(0, &rows);
  res.speedup = res.dense_rows_per_sec / res.hash_rows_per_sec;
  return res;
}

struct EndToEndRow {
  double range_fraction = 0;
  uint64_t num_chunks = 0;
  double default_ms = 0;      ///< dense kernels + coalesced I/O
  double hash_ms = 0;         ///< hash kernels + coalesced I/O
  double no_coalesce_ms = 0;  ///< dense kernels, per-source-chunk reads
  AggKernelStats stats;       ///< counters from the default engine
};

/// Builds a fresh chunked file at `range_fraction` and times ComputeChunks
/// over every chunk of `target` for the three engine configurations.
Result<EndToEndRow> RunEndToEnd(const schema::StarSchema* schema,
                                const std::vector<Tuple>& tuples,
                                double range_fraction, uint32_t pool_frames,
                                const GroupBySpec& target) {
  ChunkingOptions copts;
  copts.range_fraction = range_fraction;
  CHUNKCACHE_ASSIGN_OR_RETURN(
      ChunkingScheme scheme,
      ChunkingScheme::Build(schema, copts, tuples.size()));
  InMemoryDiskManager disk;
  BufferPool pool(&disk, pool_frames);
  CHUNKCACHE_ASSIGN_OR_RETURN(ChunkedFile file,
                              ChunkedFile::BulkLoad(&pool, &scheme, tuples));

  EndToEndRow row;
  row.range_fraction = range_fraction;
  row.num_chunks = scheme.GridFor(target).num_chunks();
  std::vector<uint64_t> nums(row.num_chunks);
  for (uint64_t i = 0; i < nums.size(); ++i) nums[i] = i;

  auto time_config = [&](BackendOptions opts,
                         AggKernelStats* stats) -> Result<double> {
    BackendEngine engine(&pool, &file, &scheme, opts);
    WorkCounters work;
    const double t0 = NowMs();
    CHUNKCACHE_ASSIGN_OR_RETURN(std::vector<ChunkData> data,
                                engine.ComputeChunks(target, nums, {}, &work));
    const double ms = NowMs() - t0;
    if (stats != nullptr) *stats = engine.kernel_stats();
    if (data.empty()) return Status::Internal("no chunks computed");
    return ms;
  };

  BackendOptions defaults;
  CHUNKCACHE_ASSIGN_OR_RETURN(row.default_ms,
                              time_config(defaults, &row.stats));
  BackendOptions hash_forced;
  hash_forced.dense_cell_limit = 0;
  CHUNKCACHE_ASSIGN_OR_RETURN(row.hash_ms, time_config(hash_forced, nullptr));
  BackendOptions no_coalesce;
  no_coalesce.coalesce_io = false;
  CHUNKCACHE_ASSIGN_OR_RETURN(row.no_coalesce_ms,
                              time_config(no_coalesce, nullptr));
  return row;
}

Status Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  CHUNKCACHE_ASSIGN_OR_RETURN(schema::StarSchema schema,
                              schema::BuildPaperSchema());
  schema::FactGenOptions gen;
  gen.num_tuples = config.num_tuples;
  gen.seed = config.data_seed;
  const std::vector<Tuple> tuples = schema::GenerateFactTuples(schema, gen);

  std::printf("=== Dense-grid kernel vs hash fallback (%llu tuples) ===\n",
              static_cast<unsigned long long>(tuples.size()));

  ChunkingOptions copts;
  copts.range_fraction = config.range_fraction;
  CHUNKCACHE_ASSIGN_OR_RETURN(
      ChunkingScheme scheme,
      ChunkingScheme::Build(&schema, copts, tuples.size()));
  const GroupBySpec kernel_gb{{1, 1, 1, 1}, 4};
  const int reps = tuples.size() > 100000 ? 3 : 10;
  const KernelResult kernel =
      RunKernelBench(schema, scheme, tuples, kernel_gb, reps);
  std::printf("%-14s %16.0f rows/s\n%-14s %16.0f rows/s\n%-14s %15.2fx\n",
              "dense kernel", kernel.dense_rows_per_sec, "hash kernel",
              kernel.hash_rows_per_sec, "speedup", kernel.speedup);

  std::printf("\n=== End-to-end ComputeChunks latency by chunk size ===\n");
  std::printf("%-10s %8s %12s %12s %14s %10s %8s\n", "range_frac", "chunks",
              "default ms", "hash ms", "no-coalesce ms", "coalesced",
              "merged");
  const GroupBySpec e2e_gb{{1, 1, 1, 0}, 4};
  std::vector<EndToEndRow> rows;
  for (double rf : {0.05, 0.1, 0.2}) {
    CHUNKCACHE_ASSIGN_OR_RETURN(
        EndToEndRow row,
        RunEndToEnd(&schema, tuples, rf, config.pool_frames, e2e_gb));
    std::printf("%-10.2f %8llu %12.1f %12.1f %14.1f %10llu %8llu\n", rf,
                static_cast<unsigned long long>(row.num_chunks),
                row.default_ms, row.hash_ms, row.no_coalesce_ms,
                static_cast<unsigned long long>(row.stats.coalesced_reads),
                static_cast<unsigned long long>(row.stats.runs_merged));
    rows.push_back(row);
  }

  std::FILE* out = std::fopen("BENCH_agg.json", "w");
  if (out == nullptr) return Status::IoError("cannot write BENCH_agg.json");
  std::fprintf(out, "{\n  \"bench\": \"agg\",\n  \"num_tuples\": %llu,\n",
               static_cast<unsigned long long>(tuples.size()));
  std::fprintf(out,
               "  \"kernel\": {\"group_by\": \"1,1,1,1\", "
               "\"rows_folded\": %llu, \"dense_rows_per_sec\": %.0f, "
               "\"hash_rows_per_sec\": %.0f, \"speedup\": %.3f},\n",
               static_cast<unsigned long long>(kernel.rows_folded),
               kernel.dense_rows_per_sec, kernel.hash_rows_per_sec,
               kernel.speedup);
  std::fprintf(out, "  \"end_to_end\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const EndToEndRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"range_fraction\": %.2f, \"num_chunks\": %llu, "
        "\"default_ms\": %.2f, \"hash_ms\": %.2f, \"no_coalesce_ms\": %.2f, "
        "\"dense_kernels\": %llu, \"hash_kernels\": %llu, "
        "\"coalesced_reads\": %llu, \"single_run_reads\": %llu, "
        "\"runs_merged\": %llu}%s\n",
        r.range_fraction, static_cast<unsigned long long>(r.num_chunks),
        r.default_ms, r.hash_ms, r.no_coalesce_ms,
        static_cast<unsigned long long>(r.stats.dense_kernels),
        static_cast<unsigned long long>(r.stats.hash_kernels),
        static_cast<unsigned long long>(r.stats.coalesced_reads),
        static_cast<unsigned long long>(r.stats.single_run_reads),
        static_cast<unsigned long long>(r.stats.runs_merged),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_agg.json\n");
  return Status::OK();
}

}  // namespace
}  // namespace chunkcache::bench

int main() {
  const chunkcache::Status s = chunkcache::bench::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench_agg failed: %s\n", s.message().c_str());
    return 1;
  }
  return 0;
}
