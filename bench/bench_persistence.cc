// Crash-safe persistent cache: what does a warm restart buy, and what
// does durability cost?
//
// Four runs over the SAME deterministic query stream at a mid cache
// budget (the cache holds a strict subset of the working set, so warmth
// is visible):
//   1. baseline  — persistence off; reference result hash + wall time;
//   2. cold      — persistence on, fresh directory, clean shutdown
//                  (writes the final snapshot);
//   3. warm      — restarted on that directory: recovery time, recovered
//                  entries, and the first-N-query hit ratio, which must
//                  sit strictly above the cold run's (the warm-restart
//                  claim); ends with SimulateCrash — no shutdown
//                  snapshot, exactly a SIGKILL;
//   4. crash     — restarted on the killed directory: snapshot + WAL
//                  suffix replay, results still bit-identical.
//
// Results go to stdout AND to BENCH_persistence.json (machine readable;
// CI validates the schema and the warm > cold / identical / zero
// quarantine claims). Honors CHUNKCACHE_BENCH_SCALE and
// CHUNKCACHE_BENCH_QUERIES.

#include <stdlib.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"
#include "workload/query_generator.h"

namespace chunkcache::bench {
namespace {

using backend::ResultRow;
using backend::StarJoinQuery;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t HashRows(const std::vector<ResultRow>& rows, uint64_t acc) {
  auto mix = [&acc](uint64_t v) { acc = (acc ^ v) * 0x100000001b3ULL; };
  for (const ResultRow& r : rows) {
    for (uint32_t v : r.coords) mix(v);
    uint64_t bits;
    std::memcpy(&bits, &r.sum, 8);
    mix(bits);
    mix(r.count);
    std::memcpy(&bits, &r.min_v, 8);
    mix(bits);
    std::memcpy(&bits, &r.max_v, 8);
    mix(bits);
  }
  return acc;
}

struct StreamOutcome {
  uint64_t hash = 0xcbf29ce484222325ULL;
  double wall_ms = 0;
  double first_n_hit_ratio = 0;   ///< chunk hit ratio over the first N.
  double stream_hit_ratio = 0;
  double recovery_ms = 0;
  cache::ChunkCacheStats stats;
};

/// Runs the canonical stream through one manager configuration. The
/// manager is constructed inside (construction time = recovery time when
/// persisting) and destroyed before returning unless `crash_at_end`
/// simulates a SIGKILL first.
Result<StreamOutcome> RunStream(System* sys, const ChunkManagerOptions& opts,
                                uint64_t num_queries, uint64_t first_n,
                                bool crash_at_end) {
  CHUNKCACHE_RETURN_IF_ERROR(sys->ResetBackend());
  const double t0 = NowMs();
  ChunkCacheManager mgr(&sys->engine(), opts);
  StreamOutcome out;
  out.recovery_ms = NowMs() - t0;

  // Zipfian hot regions: the realistic warm-restart shape — the queries
  // that were hot before the restart are hot again after it, so the
  // recovered contents are actually re-referenced. Same stream for every
  // configuration.
  workload::QueryGenerator gen(&sys->schema(),
                               workload::ZipfianStream(1998));
  uint64_t first_needed = 0, first_hits = 0, needed = 0, hits = 0;
  const double s0 = NowMs();
  for (uint64_t i = 0; i < num_queries; ++i) {
    const StarJoinQuery q = gen.Next();
    QueryStats st;
    CHUNKCACHE_ASSIGN_OR_RETURN(std::vector<ResultRow> rows,
                                mgr.Execute(q, &st));
    out.hash = HashRows(rows, out.hash);
    needed += st.chunks_needed;
    hits += st.chunks_from_cache;
    if (i < first_n) {
      first_needed += st.chunks_needed;
      first_hits += st.chunks_from_cache;
    }
  }
  out.wall_ms = NowMs() - s0;
  out.first_n_hit_ratio =
      first_needed ? static_cast<double>(first_hits) / first_needed : 0;
  out.stream_hit_ratio = needed ? static_cast<double>(hits) / needed : 0;
  out.stats = mgr.StatsSnapshot();
  if (crash_at_end && mgr.persistence() != nullptr) {
    mgr.persistence()->SimulateCrash();
  }
  return out;
}

Status Run() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config,
             "Persistent cache: warm restart vs cold, crash recovery");
  CHUNKCACHE_ASSIGN_OR_RETURN(std::unique_ptr<System> sys,
                              System::Build(config));

  char tmpl[] = "/tmp/chunkcache_bench_persist_XXXXXX";
  const char* dirp = ::mkdtemp(tmpl);
  if (dirp == nullptr) return Status::IoError("mkdtemp failed");
  const std::string dir = dirp;

  const uint64_t num_queries = std::max<uint64_t>(60, config.stream_queries / 5);
  const uint64_t first_n = std::max<uint64_t>(10, num_queries / 2);
  // Mid budget: the cache is useful but cannot hold everything, so both
  // replacement and warm-restart effects are visible.
  const double scale = static_cast<double>(config.num_tuples) / 500000.0;
  const uint64_t cache_bytes =
      static_cast<uint64_t>(4.0 * scale * (1 << 20));

  ChunkManagerOptions base;
  base.cache_bytes = cache_bytes;
  ChunkManagerOptions persist = base;
  persist.persist_dir = dir;
  persist.persist_snapshot_every = 512;
  persist.persist_wal_fsync_every = 8;

  CHUNKCACHE_ASSIGN_OR_RETURN(
      StreamOutcome baseline,
      RunStream(sys.get(), base, num_queries, first_n, false));
  CHUNKCACHE_ASSIGN_OR_RETURN(
      StreamOutcome cold,
      RunStream(sys.get(), persist, num_queries, first_n, false));
  CHUNKCACHE_ASSIGN_OR_RETURN(
      StreamOutcome warm,
      RunStream(sys.get(), persist, num_queries, first_n, true));
  CHUNKCACHE_ASSIGN_OR_RETURN(
      StreamOutcome crash,
      RunStream(sys.get(), persist, num_queries, first_n, false));

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  const bool identical =
      cold.hash == baseline.hash && warm.hash == baseline.hash;
  const bool crash_identical = crash.hash == baseline.hash;
  const uint64_t quarantined =
      warm.stats.persist_quarantined + crash.stats.persist_quarantined;
  const double overhead_ms =
      (cold.wall_ms - baseline.wall_ms) / static_cast<double>(num_queries);

  std::printf("%9s %10s %10s %10s %9s %10s %10s %6s\n", "run", "firstN%",
              "stream%", "wall ms", "recov ms", "recovered", "replayed",
              "ident");
  auto row = [&](const char* name, const StreamOutcome& o, bool ident) {
    std::printf("%9s %9.1f%% %9.1f%% %10.1f %9.2f %10llu %10llu %6s\n", name,
                100 * o.first_n_hit_ratio, 100 * o.stream_hit_ratio, o.wall_ms,
                o.recovery_ms,
                static_cast<unsigned long long>(
                    o.stats.persist_recovered_entries),
                static_cast<unsigned long long>(
                    o.stats.persist_replayed_records),
                ident ? "yes" : "NO");
  };
  row("baseline", baseline, true);
  row("cold", cold, cold.hash == baseline.hash);
  row("warm", warm, warm.hash == baseline.hash);
  row("crash", crash, crash_identical);
  std::printf(
      "\nwarm restart: first-%llu hit ratio %.1f%% vs cold %.1f%%; "
      "persistence overhead %.4f ms/query; WAL %llu records / %llu bytes; "
      "%llu snapshots / %llu bytes; quarantined %llu\n",
      static_cast<unsigned long long>(first_n), 100 * warm.first_n_hit_ratio,
      100 * cold.first_n_hit_ratio, overhead_ms,
      static_cast<unsigned long long>(cold.stats.persist_wal_records),
      static_cast<unsigned long long>(cold.stats.persist_wal_bytes),
      static_cast<unsigned long long>(cold.stats.persist_snapshots),
      static_cast<unsigned long long>(cold.stats.persist_snapshot_bytes),
      static_cast<unsigned long long>(quarantined));

  std::FILE* out = std::fopen("BENCH_persistence.json", "w");
  if (out == nullptr) {
    return Status::IoError("cannot write BENCH_persistence.json");
  }
  std::fprintf(
      out,
      "{\n  \"bench\": \"persistence\",\n  \"num_tuples\": %llu,\n"
      "  \"queries\": %llu,\n  \"first_n\": %llu,\n"
      "  \"cache_mb\": %.3f,\n"
      "  \"cold_first_n_hit_ratio\": %.4f,\n"
      "  \"warm_first_n_hit_ratio\": %.4f,\n"
      "  \"warm_recovery_ms\": %.3f,\n"
      "  \"crash_recovery_ms\": %.3f,\n"
      "  \"warm_recovered_entries\": %llu,\n"
      "  \"crash_replayed_records\": %llu,\n"
      "  \"wal_records\": %llu,\n  \"wal_bytes\": %llu,\n"
      "  \"snapshots\": %llu,\n  \"snapshot_bytes\": %llu,\n"
      "  \"overhead_ms_per_query\": %.5f,\n"
      "  \"quarantined\": %llu,\n"
      "  \"identical\": %s,\n  \"crash_identical\": %s\n}\n",
      static_cast<unsigned long long>(config.num_tuples),
      static_cast<unsigned long long>(num_queries),
      static_cast<unsigned long long>(first_n),
      static_cast<double>(cache_bytes) / (1 << 20),
      cold.first_n_hit_ratio, warm.first_n_hit_ratio, warm.recovery_ms,
      crash.recovery_ms,
      static_cast<unsigned long long>(warm.stats.persist_recovered_entries),
      static_cast<unsigned long long>(crash.stats.persist_replayed_records),
      static_cast<unsigned long long>(cold.stats.persist_wal_records),
      static_cast<unsigned long long>(cold.stats.persist_wal_bytes),
      static_cast<unsigned long long>(cold.stats.persist_snapshots),
      static_cast<unsigned long long>(cold.stats.persist_snapshot_bytes),
      overhead_ms, static_cast<unsigned long long>(quarantined),
      identical ? "true" : "false", crash_identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote BENCH_persistence.json\n");

  if (!identical || !crash_identical) {
    return Status::Internal("restarted cache diverged from baseline");
  }
  if (warm.first_n_hit_ratio <= cold.first_n_hit_ratio) {
    return Status::Internal("warm restart did not beat cold start");
  }
  return Status::OK();
}

}  // namespace
}  // namespace chunkcache::bench

int main() {
  const chunkcache::Status s = chunkcache::bench::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench_persistence failed: %s\n",
                 s.message().c_str());
    return 1;
  }
  return 0;
}
