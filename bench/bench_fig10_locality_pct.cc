// Reproduces Figure 10: chunk vs query caching as the hot-region share of
// the query stream grows — Q60, Q80, Q100 (60/80/100 % of queries touch
// 20 % of the cube), EQPR proximity mix. Expected shape (paper): both
// schemes improve with locality, chunk caching stays ahead throughout and
// exploits the extra locality better.

#include <cstdio>

#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"
#include "core/query_cache_manager.h"

namespace chunkcache::bench {
namespace {

int Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Figure 10: hot-region percentage (EQPR, 30 MB cache)");
  auto system = System::Build(config);
  if (!system.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  bool header = true;
  for (double pct : {0.6, 0.8, 1.0}) {
    workload::WorkloadOptions wopts = workload::EqprStream(202);
    wopts.hot_access_prob = pct;
    char label[16];
    std::snprintf(label, sizeof(label), "Q%d", static_cast<int>(pct * 100));

    {
      if (!(*system)->ResetBackend().ok()) return 1;
      core::ChunkManagerOptions opts;
      opts.cost_model = config.cost_model;
      core::ChunkCacheManager tier(&(*system)->engine(), opts);
      workload::QueryGenerator gen(&(*system)->schema(), wopts);
      auto result = RunStream(&tier, &gen, config.stream_queries,
                              config.cost_model);
      if (!result.ok()) return 1;
      result->stream = label;
      PrintResult(*result, header);
      header = false;
    }
    {
      if (!(*system)->ResetBackend().ok()) return 1;
      core::QueryManagerOptions opts;
      opts.cost_model = config.cost_model;
      core::QueryCacheManager tier(&(*system)->engine(), opts);
      workload::QueryGenerator gen(&(*system)->schema(), wopts);
      auto result = RunStream(&tier, &gen, config.stream_queries,
                              config.cost_model);
      if (!result.ok()) return 1;
      result->stream = label;
      PrintResult(*result, false);
    }
  }
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
