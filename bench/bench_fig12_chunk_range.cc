// Reproduces Figure 12: the effect of the chunk dimension range on chunk
// caching performance (EQPR stream). The x-axis is the ratio of the chunk
// range to the total dimension range at every level. Expected shape
// (paper): performance improves as the ratio grows away from tiny ranges
// (fewer chunks -> less per-chunk overhead), then worsens again as large
// boundary chunks force wasted computation — a U-shaped cost curve.
//
// Each ratio needs its own system build: the chunked file's physical
// layout depends on the chunk ranges.

#include <cstdio>

#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"

namespace chunkcache::bench {
namespace {

int Run() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Figure 12: chunk range ratio sweep (EQPR)");
  bool header = true;
  for (double ratio : {0.02, 0.04, 0.1, 0.2, 0.34, 0.5, 1.0}) {
    config.range_fraction = ratio;
    auto system = System::Build(config);
    if (!system.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   system.status().ToString().c_str());
      return 1;
    }
    core::ChunkManagerOptions opts;
    opts.cost_model = config.cost_model;
    core::ChunkCacheManager tier(&(*system)->engine(), opts);
    workload::QueryGenerator gen(&(*system)->schema(),
                                 workload::EqprStream(505));
    auto result =
        RunStream(&tier, &gen, config.stream_queries, config.cost_model);
    if (!result.ok()) return 1;
    char label[24];
    std::snprintf(label, sizeof(label), "ratio=%.2f", ratio);
    result->stream = label;
    PrintResult(*result, header);
    header = false;
    std::printf("  (base grid: %llu chunks)\n",
                static_cast<unsigned long long>(
                    (*system)->scheme()
                        .GridFor((*system)->scheme().BaseSpec())
                        .num_chunks()));
  }
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
