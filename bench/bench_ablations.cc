// Ablations over the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//   1. in-cache aggregation (paper §7 future work) on/off, on a roll-up
//      heavy session stream;
//   2. drill-down prefetch (paper §7 future work) on/off, on a drill-down
//      session stream;
//   3. materialized chunked aggregate tables at the backend on/off
//      (Section 3.1's "even statically precomputed aggregate tables can be
//      organized on a chunk basis");
//   4. chunked vs unordered backend file for the chunk-cache miss path —
//      isolating how much of the win comes from the file organization.

#include <cstdio>
#include <memory>

#include "backend/materialization_advisor.h"
#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"
#include "core/query_cache_manager.h"
#include "workload/session_generator.h"

namespace chunkcache::bench {
namespace {

using backend::StarJoinQuery;
using chunks::GroupBySpec;
using schema::OrdinalRange;

using workload::SessionGenerator;
using workload::SessionOptions;

Result<StreamResult> RunSession(core::MiddleTier* tier, SessionGenerator* gen,
                                uint64_t n, const CostModel& cm) {
  StreamResult r;
  r.tier = tier->name();
  r.queries = n;
  core::CsrAccumulator csr;
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    core::QueryStats stats;
    auto rows = tier->Execute(gen->Next(), &stats);
    if (!rows.ok()) return rows.status();
    total += cm.Cost(stats.backend_work.pages_read,
                     stats.backend_work.pages_written,
                     stats.backend_work.tuples_processed);
    csr.Record(stats);
    r.backend_pages += stats.backend_work.pages_read;
    r.backend_tuples += stats.backend_work.tuples_processed;
  }
  r.avg_ms_all = total / static_cast<double>(n);
  r.avg_ms_last100 = r.avg_ms_all;
  r.csr = csr.Csr();
  return r;
}

int Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Ablations: extensions and design choices");
  auto system = System::Build(config);
  if (!system.ok()) return 1;
  const uint64_t n = config.stream_queries;

  bool header = true;
  // --- 1. In-cache aggregation on a roll-up heavy session. ---------------
  for (bool enabled : {false, true}) {
    if (!(*system)->ResetBackend().ok()) return 1;
    core::ChunkManagerOptions opts;
    opts.enable_in_cache_aggregation = enabled;
    opts.cost_model = config.cost_model;
    core::ChunkCacheManager tier(&(*system)->engine(), opts);
    SessionOptions sopts;
    sopts.drill_down = false;  // fine first, then roll up
    sopts.seed = 707;
    SessionGenerator gen(&(*system)->schema(), sopts);
    auto result = RunSession(&tier, &gen, n, config.cost_model);
    if (!result.ok()) return 1;
    result->stream = enabled ? "rollup/agg=on" : "rollup/agg=off";
    PrintResult(*result, header);
    header = false;
  }

  // --- 2. Drill-down prefetch on a drill-down session. --------------------
  for (bool enabled : {false, true}) {
    if (!(*system)->ResetBackend().ok()) return 1;
    core::ChunkManagerOptions opts;
    opts.enable_drill_down_prefetch = enabled;
    opts.prefetch_budget_chunks = 512;
    opts.cost_model = config.cost_model;
    core::ChunkCacheManager tier(&(*system)->engine(), opts);
    SessionOptions sopts;
    sopts.drill_down = true;
    sopts.seed = 808;
    SessionGenerator gen(&(*system)->schema(), sopts);
    auto result = RunSession(&tier, &gen, n, config.cost_model);
    if (!result.ok()) return 1;
    result->stream = enabled ? "drill/pref=on" : "drill/pref=off";
    PrintResult(*result, false);
    std::printf("  (foreground cost only; prefetch I/O charged separately)\n");
  }

  // --- 3. Materialized chunked aggregates serving chunk computation. ------
  {
    if (!(*system)->ResetBackend().ok()) return 1;
    core::ChunkManagerOptions opts;
    opts.cost_model = config.cost_model;
    {
      core::ChunkCacheManager tier(&(*system)->engine(), opts);
      workload::QueryGenerator gen(&(*system)->schema(),
                                   workload::EqprStream(909));
      auto result = RunStream(&tier, &gen, n, config.cost_model);
      if (!result.ok()) return 1;
      result->stream = "eqpr/mat=off";
      PrintResult(*result, false);
    }
    // Materialize the HRU-greedy advisor's picks and rerun.
    backend::AdvisorOptions aopts;
    aopts.budget_views = 3;
    const auto picks = backend::SelectViewsToMaterialize(
        (*system)->scheme(), config.num_tuples, aopts);
    for (const auto& pick : picks) {
      std::printf("  (advisor pick: %s, ~%llu rows)\n",
                  pick.spec.ToString().c_str(),
                  static_cast<unsigned long long>(pick.estimated_rows));
      if (!(*system)->engine().MaterializeAggregate(pick.spec).ok()) return 1;
    }
    if (!(*system)->ResetBackend().ok()) return 1;
    {
      core::ChunkCacheManager tier(&(*system)->engine(), opts);
      workload::QueryGenerator gen(&(*system)->schema(),
                                   workload::EqprStream(909));
      auto result = RunStream(&tier, &gen, n, config.cost_model);
      if (!result.ok()) return 1;
      result->stream = "eqpr/mat=on";
      PrintResult(*result, false);
    }
  }

  // --- 4. Chunked vs unordered backend file for the miss path. ------------
  // With an unordered file the backend computes a missing chunk by scanning
  // the whole table (cost ~ table); the chunked file reads just the chunk.
  {
    storage::InMemoryDiskManager disk2;
    storage::BufferPool pool2(&disk2, config.pool_frames);
    schema::FactGenOptions gen2;
    gen2.num_tuples = config.num_tuples;
    gen2.seed = config.data_seed;
    auto unordered = backend::ChunkedFile::BulkLoad(
        &pool2, &(*system)->scheme(),
        schema::GenerateFactTuples((*system)->schema(), gen2),
        /*clustered=*/false);
    if (!unordered.ok()) return 1;
    backend::BackendEngine engine2(&pool2, &*unordered, &(*system)->scheme());
    if (!engine2.BuildBitmapIndexes().ok()) return 1;
    // Start cold, exactly like the chunked system below.
    if (!pool2.FlushAll().ok() || !pool2.EvictAll().ok()) return 1;
    pool2.ResetStats();
    disk2.ResetStats();

    // Shorter stream: every miss is a full scan, two orders of magnitude
    // slower — exactly the effect being demonstrated.
    const uint64_t short_n = std::min<uint64_t>(n, 150);
    core::ChunkManagerOptions opts;
    opts.cost_model = config.cost_model;
    {
      core::ChunkCacheManager tier(&engine2, opts);
      workload::QueryGenerator gen(&(*system)->schema(),
                                   workload::EqprStream(1010));
      auto result = RunStream(&tier, &gen, short_n, config.cost_model);
      if (!result.ok()) return 1;
      result->stream = "eqpr/unordered";
      PrintResult(*result, false);
    }
    if (!(*system)->ResetBackend().ok()) return 1;
    {
      core::ChunkCacheManager tier(&(*system)->engine(), opts);
      workload::QueryGenerator gen(&(*system)->schema(),
                                   workload::EqprStream(1010));
      auto result = RunStream(&tier, &gen, short_n, config.cost_model);
      if (!result.ok()) return 1;
      result->stream = "eqpr/chunked";
      PrintResult(*result, false);
    }
  }
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
