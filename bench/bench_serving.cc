// Serving-layer benchmark: calibrates the tier's closed-loop capacity,
// then sweeps open-loop arrival rates at 0.5x / 1x / 2x / 4x of it against
// a ChunkServer whose admission is sized to that capacity. Reports per
// point: offered / ok / shed / errors (with the exact-accounting check
// offered == ok + shed + errors read from the server registry), the shed
// fraction, client-observed p50/p99/p999 latency of admitted queries, and
// the cache hit ratio of the work that was admitted. A separate identity
// pass verifies that served responses hash-identical to in-process
// execution of the same seeded session stream. Writes BENCH_serving.json
// (schema-checked in CI with a shed-accounting floor).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "workload/session_generator.h"

namespace chunkcache::bench {
namespace {

using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using server::ChunkClient;
using server::ChunkServer;
using server::ClientOptions;
using server::ServerOptions;

constexpr uint32_t kNumTenants = 2;
constexpr uint32_t kServerWorkers = 4;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ChunkManagerOptions TierOptions() {
  ChunkManagerOptions mopts;
  mopts.num_workers = 2;
  mopts.cache_shards = 8;
  return mopts;
}

/// Pre-generates the session stream once: every phase replays the same
/// queries in the same order (SessionStreamHash pins the stream; the JSON
/// records it so runs are comparable).
std::vector<backend::StarJoinQuery> MakeStream(schema::StarSchema* schema,
                                               uint64_t n) {
  workload::SessionOptions wopts;
  wopts.seed = 11;
  workload::SessionGenerator gen(schema, wopts);
  std::vector<backend::StarJoinQuery> stream;
  stream.reserve(n);
  for (uint64_t i = 0; i < n; ++i) stream.push_back(gen.Next());
  return stream;
}

/// Closed-loop capacity: kServerWorkers threads execute the stream
/// back-to-back through the server (no admission limits); capacity is the
/// aggregate completed qps. This is the number the open-loop sweep's
/// multipliers are relative to.
Result<double> MeasureCapacity(System& system,
                               const std::vector<backend::StarJoinQuery>& stream) {
  ChunkCacheManager tier(&system.engine(), TierOptions());
  ServerOptions sopts;
  sopts.num_workers = kServerWorkers;
  ChunkServer srv(&tier, sopts);
  CHUNKCACHE_RETURN_IF_ERROR(srv.Start());

  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> done{0};
  std::atomic<bool> failed{false};
  const double start = NowSeconds();
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kServerWorkers; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions copts;
      copts.port = srv.port();
      copts.tenant_id = t % kNumTenants;
      auto client = ChunkClient::Connect(copts);
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      for (;;) {
        const uint64_t i = next.fetch_add(1);
        if (i >= stream.size()) return;
        auto resp = (*client)->Execute(stream[i]);
        if (!resp.ok() || !resp->status.ok()) {
          failed.store(true);
          return;
        }
        done.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed = NowSeconds() - start;
  srv.Stop();
  if (failed.load()) return Status::Internal("capacity run saw failures");
  if (elapsed <= 0 || done.load() == 0) {
    return Status::Internal("capacity run completed no queries");
  }
  return static_cast<double>(done.load()) / elapsed;
}

/// Served-vs-direct identity over the stream prefix: hashes must match
/// query for query, compression on or off upstream of the wire.
Result<bool> CheckIdentity(System& system,
                           const std::vector<backend::StarJoinQuery>& stream,
                           uint64_t n) {
  ChunkCacheManager direct_tier(&system.engine(), TierOptions());
  ChunkCacheManager served_tier(&system.engine(), TierOptions());
  ServerOptions sopts;
  sopts.num_workers = 2;
  sopts.result_batch_bytes = 8 * server::wire::kRowBytes + 4;  // multi-frame
  ChunkServer srv(&served_tier, sopts);
  CHUNKCACHE_RETURN_IF_ERROR(srv.Start());
  ClientOptions copts;
  copts.port = srv.port();
  auto client = ChunkClient::Connect(copts);
  if (!client.ok()) return client.status();
  bool identical = true;
  for (uint64_t i = 0; i < n && i < stream.size(); ++i) {
    core::QueryStats stats;
    auto direct = direct_tier.Execute(stream[i], &stats);
    if (!direct.ok()) return direct.status();
    auto resp = (*client)->Execute(stream[i]);
    if (!resp.ok()) return resp.status();
    if (!resp->status.ok()) return resp->status;
    if (server::wire::HashRows(resp->rows) !=
        server::wire::HashRows(*direct)) {
      identical = false;
      std::fprintf(stderr, "identity mismatch on query %llu\n",
                   static_cast<unsigned long long>(i));
    }
  }
  srv.Stop();
  return identical;
}

struct SweepPoint {
  double multiplier = 0;
  double offered_qps = 0;
  uint64_t offered = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  bool accounting_exact = false;
  double shed_fraction = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double hit_ratio = 0;
};

double Percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size())));
  return v[idx];
}

/// One open-loop point: per tenant, a sender paces arrivals on the fixed
/// schedule while a reader drains responses and times admitted queries.
Result<SweepPoint> RunSweepPoint(System& system,
                                 const std::vector<backend::StarJoinQuery>& stream,
                                 double capacity_qps, double multiplier,
                                 uint64_t queries_per_tenant) {
  SweepPoint point;
  point.multiplier = multiplier;
  point.offered_qps = capacity_qps * multiplier;

  // Fresh tier + server per point: counters start at zero, the cache
  // starts cold, points are independent.
  ChunkCacheManager tier(&system.engine(), TierOptions());
  ServerOptions sopts;
  sopts.num_workers = kServerWorkers;
  // Admission sized to capacity: the per-tenant sustained rate sums to
  // ~1x capacity, so multiplier m offers m times what admission allows
  // and the shed fraction should approach 1 - 1/m for m > 1.
  sopts.admission.default_quota.rate_qps =
      capacity_qps / static_cast<double>(kNumTenants);
  sopts.admission.default_quota.burst =
      std::max(1.0, sopts.admission.default_quota.rate_qps / 10.0);
  sopts.admission.global_max_inflight = 4 * kServerWorkers;
  ChunkServer srv(&tier, sopts);
  CHUNKCACHE_RETURN_IF_ERROR(srv.Start());

  const double per_tenant_qps =
      point.offered_qps / static_cast<double>(kNumTenants);
  const auto interarrival = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      per_tenant_qps > 0 ? 1.0 / per_tenant_qps : 0.001));

  std::atomic<bool> failed{false};
  std::atomic<uint64_t> ok{0}, shed{0}, errors{0};
  std::atomic<uint64_t> hit_chunks{0}, needed_chunks{0};
  std::mutex lat_mu;
  std::vector<double> latencies_ms;

  std::vector<std::thread> tenants;
  for (uint32_t t = 0; t < kNumTenants; ++t) {
    tenants.emplace_back([&, t] {
      ClientOptions copts;
      copts.port = srv.port();
      copts.tenant_id = t + 1;
      copts.recv_timeout_ms = 60000;
      auto client = ChunkClient::Connect(copts);
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      // send_at[i] is request id i+1's send timestamp (ids are sequential
      // on a fresh client), written by the sender before the reader can
      // see that id's response.
      std::vector<double> send_at(queries_per_tenant, 0);
      std::atomic<uint64_t> sent{0};
      std::thread sender([&] {
        const auto start = std::chrono::steady_clock::now();
        for (uint64_t i = 0; i < queries_per_tenant; ++i) {
          std::this_thread::sleep_until(start + interarrival * i);
          send_at[i] = NowSeconds();
          auto id = (*client)->SendQuery(
              stream[(t * queries_per_tenant + i) % stream.size()]);
          if (!id.ok()) {
            failed.store(true);
            return;
          }
          sent.fetch_add(1, std::memory_order_release);
        }
      });
      // Reader drains in id order; admitted responses complete roughly in
      // admission order (one FIFO pool), sheds resolve from the stash.
      uint64_t next_id = 1;
      std::vector<double> local_lat;
      while (true) {
        const uint64_t limit = sent.load(std::memory_order_acquire);
        if (next_id > limit) {
          if (limit >= queries_per_tenant || failed.load()) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        auto resp = (*client)->WaitResponse(next_id);
        if (!resp.ok()) {
          failed.store(true);
          break;
        }
        const double lat_ms =
            (NowSeconds() - send_at[next_id - 1]) * 1000.0;
        if (resp->status.ok()) {
          ok.fetch_add(1);
          local_lat.push_back(lat_ms);
          hit_chunks.fetch_add(resp->summary.chunks_from_cache +
                               resp->summary.chunks_from_aggregation);
          needed_chunks.fetch_add(resp->summary.chunks_needed);
        } else if (resp->shed) {
          shed.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
        ++next_id;
      }
      sender.join();
      // Drain anything sent after the reader's last limit check.
      for (; next_id <= sent.load(); ++next_id) {
        auto resp = (*client)->WaitResponse(next_id);
        if (!resp.ok()) {
          failed.store(true);
          break;
        }
        if (resp->status.ok()) {
          ok.fetch_add(1);
          local_lat.push_back((NowSeconds() - send_at[next_id - 1]) * 1000.0);
          hit_chunks.fetch_add(resp->summary.chunks_from_cache +
                               resp->summary.chunks_from_aggregation);
          needed_chunks.fetch_add(resp->summary.chunks_needed);
        } else if (resp->shed) {
          shed.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies_ms.insert(latencies_ms.end(), local_lat.begin(),
                          local_lat.end());
    });
  }
  for (auto& th : tenants) th.join();
  if (failed.load()) {
    srv.Stop();
    return Status::Internal("sweep point saw transport failures");
  }

  const auto snap = srv.metrics().TakeSnapshot();
  point.offered = snap.counter("server.queries.offered");
  point.ok = snap.counter("server.queries.ok");
  point.shed = snap.counter("server.queries.shed");
  point.errors = snap.counter("server.queries.errors");
  point.accounting_exact =
      point.offered == point.ok + point.shed + point.errors &&
      point.offered == queries_per_tenant * kNumTenants &&
      point.ok == ok.load() && point.shed == shed.load() &&
      point.errors == errors.load();
  point.shed_fraction =
      point.offered == 0
          ? 0
          : static_cast<double>(point.shed) / static_cast<double>(point.offered);
  point.p50_ms = Percentile(latencies_ms, 0.50);
  point.p99_ms = Percentile(latencies_ms, 0.99);
  point.p999_ms = Percentile(latencies_ms, 0.999);
  point.hit_ratio = needed_chunks.load() == 0
                        ? 0
                        : static_cast<double>(hit_chunks.load()) /
                              static_cast<double>(needed_chunks.load());
  srv.Stop();
  return point;
}

Status Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Serving layer: open-loop overload sweep");

  auto system = System::Build(config);
  CHUNKCACHE_RETURN_IF_ERROR(system.status());

  const uint64_t stream_n =
      std::max<uint64_t>(64, std::min<uint64_t>(config.stream_queries, 512));
  const auto stream = MakeStream(&(*system)->schema(), stream_n);
  workload::SessionOptions wopts;
  wopts.seed = 11;
  const uint64_t stream_hash =
      workload::SessionStreamHash((*system)->schema(), wopts, stream_n);

  // Identity first (also warms nothing: fresh tiers, then discarded).
  auto identity =
      CheckIdentity(**system, stream, std::min<uint64_t>(stream_n, 48));
  CHUNKCACHE_RETURN_IF_ERROR(identity.status());

  auto capacity = MeasureCapacity(**system, stream);
  CHUNKCACHE_RETURN_IF_ERROR(capacity.status());
  std::printf("closed-loop capacity: %.1f qps (%u workers)\n", *capacity,
              kServerWorkers);

  const uint64_t queries_per_tenant = std::max<uint64_t>(
      80, std::min<uint64_t>(config.stream_queries / kNumTenants, 240));
  const double multipliers[] = {0.5, 1.0, 2.0, 4.0};
  std::vector<SweepPoint> points;
  std::printf("%6s %9s %8s %6s %6s %7s %10s %9s %9s %9s %6s\n", "mult",
              "offered/s", "offered", "ok", "shed", "errors", "shed_frac",
              "p50_ms", "p99_ms", "p999_ms", "hit");
  for (const double m : multipliers) {
    auto point =
        RunSweepPoint(**system, stream, *capacity, m, queries_per_tenant);
    CHUNKCACHE_RETURN_IF_ERROR(point.status());
    points.push_back(*point);
    std::printf("%6.1f %9.1f %8llu %6llu %6llu %7llu %10.3f %9.2f %9.2f "
                "%9.2f %6.3f%s\n",
                point->multiplier, point->offered_qps,
                static_cast<unsigned long long>(point->offered),
                static_cast<unsigned long long>(point->ok),
                static_cast<unsigned long long>(point->shed),
                static_cast<unsigned long long>(point->errors),
                point->shed_fraction, point->p50_ms, point->p99_ms,
                point->p999_ms, point->hit_ratio,
                point->accounting_exact ? "" : "  ACCOUNTING MISMATCH");
  }

  std::FILE* out = std::fopen("BENCH_serving.json", "w");
  if (out == nullptr) return Status::IoError("cannot write BENCH_serving.json");
  std::fprintf(out,
               "{\n  \"bench\": \"serving\",\n  \"num_tuples\": %llu,\n"
               "  \"stream_queries\": %llu,\n"
               "  \"session_stream_hash\": \"%016llx\",\n"
               "  \"capacity_qps\": %.2f,\n  \"num_tenants\": %u,\n"
               "  \"server_workers\": %u,\n  \"identity\": %s,\n"
               "  \"sweep\": [\n",
               static_cast<unsigned long long>(config.num_tuples),
               static_cast<unsigned long long>(stream_n),
               static_cast<unsigned long long>(stream_hash), *capacity,
               kNumTenants, kServerWorkers, *identity ? "true" : "false");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(out,
                 "    {\"multiplier\": %.2f, \"offered_qps\": %.2f, "
                 "\"offered\": %llu, \"ok\": %llu, \"shed\": %llu, "
                 "\"errors\": %llu, \"accounting_exact\": %s, "
                 "\"shed_fraction\": %.4f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"p999_ms\": %.3f, "
                 "\"hit_ratio\": %.4f}%s\n",
                 p.multiplier, p.offered_qps,
                 static_cast<unsigned long long>(p.offered),
                 static_cast<unsigned long long>(p.ok),
                 static_cast<unsigned long long>(p.shed),
                 static_cast<unsigned long long>(p.errors),
                 p.accounting_exact ? "true" : "false", p.shed_fraction,
                 p.p50_ms, p.p99_ms, p.p999_ms, p.hit_ratio,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_serving.json\n");

  if (!*identity) return Status::Internal("served results diverged");
  for (const SweepPoint& p : points) {
    if (!p.accounting_exact) {
      return Status::Internal("shed accounting not exact at multiplier " +
                              std::to_string(p.multiplier));
    }
  }
  if (points.back().shed == 0) {
    return Status::Internal("no sheds at 4x capacity: admission inert");
  }
  return Status::OK();
}

}  // namespace
}  // namespace chunkcache::bench

int main() {
  const chunkcache::Status s = chunkcache::bench::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench_serving failed: %s\n", s.message().c_str());
    return 1;
  }
  return 0;
}
