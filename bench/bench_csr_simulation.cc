// Reproduces the Section 6.1.4 in-text simulation: for the Q100 stream
// (100 % of queries in a hot region of 20 % of the cube) and a cache sized
// at 20 % of the cube, the query-level cache saturates at CSR ~= 0.42
// because overlapping results are stored redundantly, while the chunk
// cache — which shares overlapping chunks — approaches CSR ~= 1 (paper
// measured 0.98) over a 5000-query stream.

#include <cstdio>

#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"
#include "core/query_cache_manager.h"

namespace chunkcache::bench {
namespace {

int Run() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  // 5000 queries unless explicitly overridden.
  if (std::getenv("CHUNKCACHE_BENCH_QUERIES") == nullptr) {
    config.stream_queries = 5000;
  }
  PrintSetup(config,
             "Section 6.1.4 CSR simulation: redundant storage in query "
             "caching (Q100, cache = hot-region size)");
  auto system = System::Build(config);
  if (!system.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  // Cache sized to hold the hot region comfortably under chunk caching:
  // 20 % of the cube. We approximate "cube size" by the aggregate bytes of
  // all hot-region rows across levels; the paper used 20 % of its 300 MB
  // cube = 60 MB for a 10 MB base table. Scale equivalently: 6x the base
  // table's bytes... the ratio that matters is cache >= hot region.
  const uint64_t cache_bytes =
      static_cast<uint64_t>(0.2 * 6.0 * config.num_tuples *
                            sizeof(storage::AggTuple));

  workload::WorkloadOptions wopts = workload::EqprStream(303);
  wopts.hot_access_prob = 1.0;  // Q100

  bool header = true;
  {
    if (!(*system)->ResetBackend().ok()) return 1;
    core::ChunkManagerOptions opts;
    opts.cache_bytes = cache_bytes;
    opts.cost_model = config.cost_model;
    core::ChunkCacheManager tier(&(*system)->engine(), opts);
    workload::QueryGenerator gen(&(*system)->schema(), wopts);
    auto result =
        RunStream(&tier, &gen, config.stream_queries, config.cost_model);
    if (!result.ok()) return 1;
    result->stream = "Q100";
    PrintResult(*result, header);
    header = false;
    std::printf("  -> chunk cache CSR after %llu queries: %.2f "
                "(paper: 0.98)\n",
                static_cast<unsigned long long>(config.stream_queries),
                result->csr);
  }
  {
    if (!(*system)->ResetBackend().ok()) return 1;
    core::QueryManagerOptions opts;
    opts.cache_bytes = cache_bytes;
    opts.cost_model = config.cost_model;
    core::QueryCacheManager tier(&(*system)->engine(), opts);
    workload::QueryGenerator gen(&(*system)->schema(), wopts);
    auto result =
        RunStream(&tier, &gen, config.stream_queries, config.cost_model);
    if (!result.ok()) return 1;
    result->stream = "Q100";
    PrintResult(*result, false);
    std::printf("  -> query cache CSR after %llu queries: %.2f "
                "(paper: 0.42; redundant storage caps reuse)\n",
                static_cast<unsigned long long>(config.stream_queries),
                result->csr);
  }
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
