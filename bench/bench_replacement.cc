// Replacement-policy lab: every policy behind MakePolicy() x benefit
// source (static heuristic vs measured cost-of-recompute EWMA) x cache
// budget, across three workload mixes:
//   - zipfian:    16 fixed regions with Zipf(0.9) popularity — skewed
//                 reuse, where recency/frequency policies separate;
//   - scan-heavy: wide roaming selections — the flood that punishes
//                 policies without scan resistance;
//   - session:    alternating drill-down / roll-up analyst sessions from
//                 session_generator — the paper's hierarchical locality.
//
// Per cell: chunk-cache hit ratio, evictions, average and p99 per-query
// latency (from the query.latency_ns histogram), backend pages, and a
// result hash. Replacement only decides which chunks stay cached, never
// answers, so every cell of one mix must hash identically — the bench
// fails otherwise (this is the measured-benefit bit-identity ablation).
//
// Per {mix, budget} a ghost run shadows ALL policies against one real
// cache's access stream and validates the online standings by replaying
// the recorded trace through fresh simulators (same trace => same hit
// counts), plus checks the active policy's ghost agrees with the real
// cache (serial single-shard, so the shadow must match reality exactly).
//
// Results go to stdout AND BENCH_replacement.json (CI validates the
// schema). Honors CHUNKCACHE_BENCH_SCALE / CHUNKCACHE_BENCH_QUERIES.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/star_join_query.h"
#include "bench/common/experiment.h"
#include "cache/ghost_cache.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "cache/replacement.h"
#include "core/chunk_cache_manager.h"
#include "workload/query_generator.h"
#include "workload/session_generator.h"

namespace chunkcache::bench {
namespace {

using backend::ResultRow;
using backend::StarJoinQuery;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;

// A mix is a named factory for a deterministic query source; every cell
// of the sweep rebuilds the source so all runs see the same stream.
struct Mix {
  std::string name;
  std::function<std::function<StarJoinQuery()>(schema::StarSchema*)> make;
};

std::vector<Mix> MakeMixes() {
  std::vector<Mix> mixes;
  mixes.push_back({"zipfian", [](schema::StarSchema* s) {
                     auto gen = std::make_shared<workload::QueryGenerator>(
                         s, workload::ZipfianStream(1998));
                     return [gen] { return gen->Next(); };
                   }});
  mixes.push_back({"scan-heavy", [](schema::StarSchema* s) {
                     auto gen = std::make_shared<workload::QueryGenerator>(
                         s, workload::ScanHeavyStream(1998));
                     return [gen] { return gen->Next(); };
                   }});
  // Alternates whole sessions between a drill-down and a roll-up
  // generator: coarse->fine, then fine->coarse, over hashed regions.
  mixes.push_back({"session", [](schema::StarSchema* s) {
                     workload::SessionOptions drill;
                     drill.drill_down = true;
                     drill.seed = 1998;
                     workload::SessionOptions roll;
                     roll.drill_down = false;
                     roll.seed = 2042;
                     auto d = std::make_shared<workload::SessionGenerator>(
                         s, drill);
                     auto r = std::make_shared<workload::SessionGenerator>(
                         s, roll);
                     auto n = std::make_shared<uint64_t>(0);
                     return [d, r, n]() -> StarJoinQuery {
                       // Two queries per session pair; swap every pair.
                       const bool use_drill = ((*n)++ / 2) % 2 == 0;
                       return use_drill ? d->Next() : r->Next();
                     };
                   }});
  return mixes;
}

uint64_t HashRows(const std::vector<ResultRow>& rows, uint64_t acc) {
  auto mix = [&acc](uint64_t v) { acc = (acc ^ v) * 0x100000001b3ULL; };
  for (const ResultRow& r : rows) {
    for (uint32_t v : r.coords) mix(v);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(r.sum), "");
    std::memcpy(&bits, &r.sum, 8);
    mix(bits);
    mix(r.count);
    std::memcpy(&bits, &r.min_v, 8);
    mix(bits);
    std::memcpy(&bits, &r.max_v, 8);
    mix(bits);
  }
  return acc;
}

struct Cell {
  std::string mix;
  double cache_mb = 0;
  std::string policy;
  std::string benefit_source;
  double hit_ratio = 0;
  uint64_t evictions = 0;
  double avg_ms = 0;   ///< Real wall per query.
  double p99_ms = 0;   ///< query.latency_ns histogram p99.
  uint64_t pages = 0;
  uint64_t hash = 0;
};

struct GhostRun {
  std::string mix;
  double cache_mb = 0;
  std::string active_policy;
  std::vector<cache::GhostStanding> standings;
  uint64_t trace_events = 0;
  bool replay_ok = false;        ///< Trace replay reproduces standings.
  bool matches_real = false;     ///< Active policy's ghost == real hits.
  uint64_t real_hits = 0;
};

Result<Cell> RunCell(System* sys, const Mix& mix, uint64_t cache_bytes,
                     const std::string& policy,
                     const std::string& benefit_source,
                     uint64_t num_queries) {
  CHUNKCACHE_RETURN_IF_ERROR(sys->ResetBackend());
  ChunkManagerOptions opts;
  opts.cache_bytes = cache_bytes;
  opts.policy = policy;
  opts.benefit_source = benefit_source;
  opts.cost_model = sys->config().cost_model;
  ChunkCacheManager mgr(&sys->engine(), opts);
  auto next = mix.make(&sys->schema());

  Cell cell;
  cell.mix = mix.name;
  cell.cache_mb = static_cast<double>(cache_bytes) / (1 << 20);
  cell.policy = policy;
  cell.benefit_source = benefit_source;
  cell.hash = 0xcbf29ce484222325ULL;
  uint64_t pages = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_queries; ++i) {
    const StarJoinQuery q = next();
    QueryStats st;
    CHUNKCACHE_ASSIGN_OR_RETURN(std::vector<ResultRow> rows,
                                mgr.Execute(q, &st));
    cell.hash = HashRows(rows, cell.hash);
    pages += st.backend_work.pages_read;
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  cell.avg_ms = wall_ms / static_cast<double>(num_queries);
  cell.pages = pages;
  const cache::ChunkCacheStats stats = mgr.StatsSnapshot();
  cell.hit_ratio = stats.lookups > 0
                       ? static_cast<double>(stats.hits) /
                             static_cast<double>(stats.lookups)
                       : 0;
  cell.evictions = stats.evictions;
  const MetricsRegistry::Snapshot snap = mgr.metrics().TakeSnapshot();
  const auto it = snap.histograms.find("query.latency_ns");
  if (it != snap.histograms.end()) {
    cell.p99_ms = it->second.Quantile(0.99) / 1e6;
  }
  return cell;
}

Result<GhostRun> RunGhosts(System* sys, const Mix& mix, uint64_t cache_bytes,
                           uint64_t num_queries) {
  CHUNKCACHE_RETURN_IF_ERROR(sys->ResetBackend());
  ChunkManagerOptions opts;
  opts.cache_bytes = cache_bytes;
  opts.policy = "lru";  // the active policy also runs as its own ghost
  opts.cost_model = sys->config().cost_model;
  opts.ghost_policies = cache::KnownPolicyNames();
  opts.ghost_record_trace = true;
  ChunkCacheManager mgr(&sys->engine(), opts);
  auto next = mix.make(&sys->schema());
  for (uint64_t i = 0; i < num_queries; ++i) {
    QueryStats st;
    CHUNKCACHE_ASSIGN_OR_RETURN(std::vector<ResultRow> rows,
                                mgr.Execute(next(), &st));
    (void)rows;
  }

  GhostRun run;
  run.mix = mix.name;
  run.cache_mb = static_cast<double>(cache_bytes) / (1 << 20);
  run.active_policy = opts.policy;
  const cache::GhostCacheSet* ghosts = mgr.chunk_cache().ghosts();
  CHUNKCACHE_CHECK(ghosts != nullptr);
  run.standings = ghosts->Standings();
  const std::vector<cache::GhostEvent> trace = ghosts->Trace();
  run.trace_events = trace.size();

  // Dedicated re-run: the same trace through fresh simulators must land
  // on exactly the online standings.
  run.replay_ok = !ghosts->trace_truncated();
  for (const cache::GhostStanding& st : run.standings) {
    cache::GhostCacheSim sim(st.policy, cache_bytes);
    for (const cache::GhostEvent& e : trace) {
      sim.Access(e.key_id, e.bytes, e.benefit);
    }
    if (sim.hits() != st.hits || sim.misses() != st.misses ||
        sim.evictions() != st.evictions) {
      run.replay_ok = false;
    }
    // The active policy's shadow saw the identical reference stream the
    // real (serial, single-shard) cache served, so it must agree.
    if (st.policy == run.active_policy) {
      const cache::ChunkCacheStats real = mgr.StatsSnapshot();
      run.real_hits = real.hits;
      run.matches_real = st.hits == real.hits;
    }
  }
  return run;
}

Status Run() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  config.pool_frames = 256;  // undersized pool: backend pages are real I/O
  PrintSetup(config, "Replacement lab: policy x benefit source x budget");
  CHUNKCACHE_ASSIGN_OR_RETURN(std::unique_ptr<System> sys,
                              System::Build(config));

  const uint64_t num_queries =
      std::max<uint64_t>(50, config.stream_queries / 5);
  const double scale = static_cast<double>(config.num_tuples) / 500000.0;
  std::vector<uint64_t> budgets;
  for (double mb : {2.0, 5.0, 10.0}) {
    budgets.push_back(static_cast<uint64_t>(mb * scale * (1 << 20)));
  }
  const std::vector<std::string>& policies = cache::KnownPolicyNames();
  const std::vector<Mix> mixes = MakeMixes();

  std::vector<Cell> cells;
  std::vector<GhostRun> ghost_runs;
  bool identical_all = true;
  bool replay_ok_all = true;
  bool ghost_matches_real_all = true;

  for (const Mix& mix : mixes) {
    uint64_t mix_hash = 0;
    bool have_hash = false;
    std::printf("\n-- mix: %s --\n", mix.name.c_str());
    std::printf("%8s %18s %9s %7s %9s %9s %9s %9s\n", "cache", "policy",
                "benefit", "hit%", "evict", "ms/q", "p99 ms", "pages");
    for (uint64_t bytes : budgets) {
      for (const std::string& policy : policies) {
        for (const char* source : {"static", "measured"}) {
          CHUNKCACHE_ASSIGN_OR_RETURN(
              Cell cell,
              RunCell(sys.get(), mix, bytes, policy, source, num_queries));
          if (!have_hash) {
            mix_hash = cell.hash;
            have_hash = true;
          } else if (cell.hash != mix_hash) {
            identical_all = false;
            std::fprintf(stderr,
                         "HASH MISMATCH: %s %s/%s @%.2fMB diverged\n",
                         mix.name.c_str(), policy.c_str(), source,
                         cell.cache_mb);
          }
          std::printf("%6.2fM %18s %9s %6.1f%% %9llu %9.3f %9.3f %9llu\n",
                      cell.cache_mb, policy.c_str(), source,
                      100 * cell.hit_ratio,
                      static_cast<unsigned long long>(cell.evictions),
                      cell.avg_ms, cell.p99_ms,
                      static_cast<unsigned long long>(cell.pages));
          cells.push_back(std::move(cell));
        }
      }
      CHUNKCACHE_ASSIGN_OR_RETURN(
          GhostRun gr, RunGhosts(sys.get(), mix, bytes, num_queries));
      replay_ok_all = replay_ok_all && gr.replay_ok;
      ghost_matches_real_all = ghost_matches_real_all && gr.matches_real;
      std::printf("  ghosts @%.2fMB (%llu events, replay %s, real-agree "
                  "%s):",
                  gr.cache_mb,
                  static_cast<unsigned long long>(gr.trace_events),
                  gr.replay_ok ? "ok" : "FAILED",
                  gr.matches_real ? "ok" : "FAILED");
      for (const cache::GhostStanding& st : gr.standings) {
        const uint64_t refs = st.hits + st.misses;
        std::printf(" %s=%.1f%%", st.policy.c_str(),
                    refs > 0 ? 100.0 * static_cast<double>(st.hits) /
                                   static_cast<double>(refs)
                             : 0.0);
      }
      std::printf("\n");
      ghost_runs.push_back(std::move(gr));
    }
  }

  std::FILE* out = std::fopen("BENCH_replacement.json", "w");
  if (out == nullptr) {
    return Status::IoError("cannot write BENCH_replacement.json");
  }
  std::fprintf(out,
               "{\n  \"bench\": \"replacement\",\n  \"num_tuples\": %llu,\n"
               "  \"queries_per_point\": %llu,\n  \"policies\": [",
               static_cast<unsigned long long>(config.num_tuples),
               static_cast<unsigned long long>(num_queries));
  for (size_t i = 0; i < policies.size(); ++i) {
    std::fprintf(out, "\"%s\"%s", policies[i].c_str(),
                 i + 1 < policies.size() ? ", " : "");
  }
  std::fprintf(out, "],\n  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        out,
        "    {\"mix\": \"%s\", \"cache_mb\": %.2f, \"policy\": \"%s\", "
        "\"benefit_source\": \"%s\", \"hit_ratio\": %.4f, "
        "\"evictions\": %llu, \"avg_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"pages\": %llu}%s\n",
        c.mix.c_str(), c.cache_mb, c.policy.c_str(),
        c.benefit_source.c_str(), c.hit_ratio,
        static_cast<unsigned long long>(c.evictions), c.avg_ms, c.p99_ms,
        static_cast<unsigned long long>(c.pages),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"ghosts\": [\n");
  for (size_t i = 0; i < ghost_runs.size(); ++i) {
    const GhostRun& g = ghost_runs[i];
    std::fprintf(out,
                 "    {\"mix\": \"%s\", \"cache_mb\": %.2f, "
                 "\"trace_events\": %llu, \"replay_ok\": %s, "
                 "\"matches_real\": %s, \"standings\": [",
                 g.mix.c_str(), g.cache_mb,
                 static_cast<unsigned long long>(g.trace_events),
                 g.replay_ok ? "true" : "false",
                 g.matches_real ? "true" : "false");
    for (size_t j = 0; j < g.standings.size(); ++j) {
      const cache::GhostStanding& st = g.standings[j];
      std::fprintf(out,
                   "{\"policy\": \"%s\", \"hits\": %llu, \"misses\": "
                   "%llu, \"evictions\": %llu}%s",
                   st.policy.c_str(),
                   static_cast<unsigned long long>(st.hits),
                   static_cast<unsigned long long>(st.misses),
                   static_cast<unsigned long long>(st.evictions),
                   j + 1 < g.standings.size() ? ", " : "");
    }
    std::fprintf(out, "]}%s\n", i + 1 < ghost_runs.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"identical_all\": %s,\n  \"replay_ok_all\": %s,\n"
               "  \"ghost_matches_real_all\": %s\n}\n",
               identical_all ? "true" : "false",
               replay_ok_all ? "true" : "false",
               ghost_matches_real_all ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote BENCH_replacement.json\n");

  if (!identical_all) {
    return Status::Internal("results diverged across policies/benefit "
                            "sources within a mix");
  }
  if (!replay_ok_all) {
    return Status::Internal("ghost replay disagreed with online standings");
  }
  if (!ghost_matches_real_all) {
    return Status::Internal("active policy's ghost disagreed with the "
                            "real cache");
  }
  return Status::OK();
}

}  // namespace
}  // namespace chunkcache::bench

int main() {
  const chunkcache::Status s = chunkcache::bench::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench_replacement failed: %s\n",
                 s.message().c_str());
    return 1;
  }
  return 0;
}
