// Reproduces Figure 13: replacement policies for the chunk cache (EQPR
// stream) — plain LRU (approximated by CLOCK, as in the paper) vs the
// benefit-weighted CLOCK of Section 5.4, plus every other policy the
// replacement lab knows (ARC, SLRU, 2Q, LFU-aging and its
// benefit-weighted variant) for a modern baseline comparison.
// Expected shape (paper): the benefit-aware policy clearly beats plain
// LRU, because chunks at higher aggregation levels are much more expensive
// to recompute and deserve preferential retention. The effect shows at
// cache sizes that force real eviction pressure.

#include <cstdio>
#include <string>

#include "bench/common/experiment.h"
#include "cache/replacement.h"
#include "core/chunk_cache_manager.h"

namespace chunkcache::bench {
namespace {

int Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Figure 13: replacement policies (EQPR, chunk caching)");
  auto system = System::Build(config);
  if (!system.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  bool header = true;
  for (uint64_t mb : {2, 5, 10, 30}) {
    for (const std::string& policy : cache::KnownPolicyNames()) {
      if (!(*system)->ResetBackend().ok()) return 1;
      core::ChunkManagerOptions opts;
      opts.policy = policy;
      opts.cache_bytes = mb << 20;
      opts.cost_model = config.cost_model;
      core::ChunkCacheManager tier(&(*system)->engine(), opts);
      workload::QueryGenerator gen(&(*system)->schema(),
                                   workload::EqprStream(606));
      auto result =
          RunStream(&tier, &gen, config.stream_queries, config.cost_model);
      if (!result.ok()) return 1;
      char label[32];
      std::snprintf(label, sizeof(label), "%s/%lluMB", policy.c_str(),
                    static_cast<unsigned long long>(mb));
      result->stream = label;
      PrintResult(*result, header);
      header = false;
    }
  }
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
