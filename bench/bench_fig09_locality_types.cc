// Reproduces Figure 9: chunk-based caching vs query-level caching (plus a
// no-cache floor) across the three locality mixes of Table 2 — Random
// (0 % proximity), EQPR (50 %), Proximity (80 %) — each with the Q80 hot
// region (80 % of queries touch 20 % of the cube). Reported per
// configuration: average modeled execution time of the last 100 queries
// and the cost saving ratio. Expected shape (paper): chunk caching wins in
// every mix, by about 2x on average, and the gap widens with locality.

#include <cstdio>

#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"
#include "core/query_cache_manager.h"
#include "core/semantic_cache_manager.h"

namespace chunkcache::bench {
namespace {

int Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Figure 9: locality types (Q80 hot region, 30 MB cache)");
  auto system = System::Build(config);
  if (!system.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  struct Stream {
    const char* name;
    workload::WorkloadOptions opts;
  };
  const Stream streams[] = {
      {"Random", workload::RandomStream(101)},
      {"EQPR", workload::EqprStream(101)},
      {"Proximity", workload::ProximityStream(101)},
  };

  bool header = true;
  for (const Stream& stream : streams) {
    // Chunk-based caching.
    {
      if (!(*system)->ResetBackend().ok()) return 1;
      core::ChunkManagerOptions opts;
      opts.cost_model = config.cost_model;
      core::ChunkCacheManager tier(&(*system)->engine(), opts);
      workload::QueryGenerator gen(&(*system)->schema(), stream.opts);
      auto result = RunStream(&tier, &gen, config.stream_queries,
                              config.cost_model);
      if (!result.ok()) {
        std::fprintf(stderr, "stream failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      result->stream = stream.name;
      PrintResult(*result, header);
      header = false;
    }
    // Query-level caching.
    {
      if (!(*system)->ResetBackend().ok()) return 1;
      core::QueryManagerOptions opts;
      opts.cost_model = config.cost_model;
      core::QueryCacheManager tier(&(*system)->engine(), opts);
      workload::QueryGenerator gen(&(*system)->schema(), stream.opts);
      auto result = RunStream(&tier, &gen, config.stream_queries,
                              config.cost_model);
      if (!result.ok()) return 1;
      result->stream = stream.name;
      PrintResult(*result, false);
    }
    // Semantic-region caching (the Section 2.4 [DFJST] comparison point).
    {
      if (!(*system)->ResetBackend().ok()) return 1;
      core::SemanticManagerOptions opts;
      opts.cost_model = config.cost_model;
      core::SemanticCacheManager tier(&(*system)->engine(), opts);
      workload::QueryGenerator gen(&(*system)->schema(), stream.opts);
      auto result = RunStream(&tier, &gen, config.stream_queries,
                              config.cost_model);
      if (!result.ok()) return 1;
      result->stream = stream.name;
      PrintResult(*result, false);
    }
    // No cache (floor).
    {
      if (!(*system)->ResetBackend().ok()) return 1;
      core::NoCacheManager tier(&(*system)->engine(), config.cost_model);
      workload::QueryGenerator gen(&(*system)->schema(), stream.opts);
      auto result = RunStream(&tier, &gen, config.stream_queries,
                              config.cost_model);
      if (!result.ok()) return 1;
      result->stream = stream.name;
      PrintResult(*result, false);
    }
  }
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
