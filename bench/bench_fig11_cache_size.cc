// Reproduces Figure 11: chunk-cache performance (CSR and average modeled
// execution time) as the cache size grows, EQPR stream. Expected shape
// (paper): both metrics improve with cache size and saturate once the hot
// working set fits.

#include <cstdio>

#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"

namespace chunkcache::bench {
namespace {

int Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Figure 11: cache size sweep (EQPR, chunk caching)");
  auto system = System::Build(config);
  if (!system.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  bool header = true;
  for (uint64_t mb : {1, 2, 5, 10, 20, 30, 60}) {
    if (!(*system)->ResetBackend().ok()) return 1;
    core::ChunkManagerOptions opts;
    opts.cache_bytes = mb << 20;
    opts.cost_model = config.cost_model;
    core::ChunkCacheManager tier(&(*system)->engine(), opts);
    workload::QueryGenerator gen(&(*system)->schema(),
                                 workload::EqprStream(404));
    auto result =
        RunStream(&tier, &gen, config.stream_queries, config.cost_model);
    if (!result.ok()) return 1;
    char label[16];
    std::snprintf(label, sizeof(label), "%lluMB",
                  static_cast<unsigned long long>(mb));
    result->stream = label;
    PrintResult(*result, header);
    header = false;
  }
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
