// Micro-benchmarks (google-benchmark) for the substrates: B+Tree point
// operations, bitmap combination, chunk-number computation
// (ComputeChunkNums), hash aggregation throughput, and single-chunk
// computation at the backend.

#include <benchmark/benchmark.h>

#include <memory>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "chunks/chunking_scheme.h"
#include "common/random.h"
#include "index/bitmap.h"
#include "index/btree.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace chunkcache {
namespace {

// ---------------------------------- BTree -----------------------------------

void BM_BTreeInsert(benchmark::State& state) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 4096);
  auto tree = index::BTree::Create(&pool);
  uint64_t key = 0;
  for (auto _ : state) {
    if (!tree->Insert(key++, index::BTreePayload{key, key}).ok()) {
      state.SkipWithError("insert failed");
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeGet(benchmark::State& state) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 4096);
  auto tree = index::BTree::Create(&pool);
  const uint64_t n = 100000;
  for (uint64_t k = 0; k < n; ++k) {
    (void)tree->Insert(k, index::BTreePayload{k, 0});
  }
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Get(rng.Uniform(n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGet);

void BM_BTreeRangeScan(benchmark::State& state) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 4096);
  auto tree = index::BTree::Create(&pool);
  std::vector<std::pair<uint64_t, index::BTreePayload>> input;
  for (uint64_t k = 0; k < 100000; ++k) {
    input.emplace_back(k, index::BTreePayload{k, 0});
  }
  (void)tree->BulkLoad(input);
  for (auto _ : state) {
    uint64_t sum = 0;
    (void)tree->ScanRange(1000, 1000 + state.range(0),
                          [&](uint64_t, const index::BTreePayload& p) {
                            sum += p.v1;
                            return true;
                          });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeRangeScan)->Arg(100)->Arg(10000);

// ---------------------------------- Bitmap ----------------------------------

void BM_BitmapAnd(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  index::Bitmap a(bits), b(bits);
  Random rng(2);
  for (uint64_t i = 0; i < bits / 16; ++i) a.Set(rng.Uniform(bits));
  for (uint64_t i = 0; i < bits / 16; ++i) b.Set(rng.Uniform(bits));
  for (auto _ : state) {
    index::Bitmap c = a;
    c.And(b);
    benchmark::DoNotOptimize(c.CountSet());
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8));
}
BENCHMARK(BM_BitmapAnd)->Arg(500000);

// ------------------------ Chunk machinery / aggregation ---------------------

struct MicroSystem {
  std::unique_ptr<schema::StarSchema> schema;
  std::unique_ptr<chunks::ChunkingScheme> scheme;
  storage::InMemoryDiskManager disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<backend::ChunkedFile> file;
  std::unique_ptr<backend::BackendEngine> engine;

  static MicroSystem* Get() {
    static MicroSystem* system = [] {
      auto* sys = new MicroSystem();
      auto s = schema::BuildPaperSchema();
      CHUNKCACHE_CHECK(s.ok());
      sys->schema = std::make_unique<schema::StarSchema>(std::move(s).value());
      chunks::ChunkingOptions copts;
      copts.range_fraction = 0.1;
      auto scheme = chunks::ChunkingScheme::Build(sys->schema.get(), copts,
                                                  100000);
      CHUNKCACHE_CHECK(scheme.ok());
      sys->scheme = std::make_unique<chunks::ChunkingScheme>(
          std::move(scheme).value());
      sys->pool = std::make_unique<storage::BufferPool>(&sys->disk, 8192);
      schema::FactGenOptions gen;
      gen.num_tuples = 100000;
      auto file = backend::ChunkedFile::BulkLoad(
          sys->pool.get(), sys->scheme.get(),
          schema::GenerateFactTuples(*sys->schema, gen));
      CHUNKCACHE_CHECK(file.ok());
      sys->file =
          std::make_unique<backend::ChunkedFile>(std::move(file).value());
      sys->engine = std::make_unique<backend::BackendEngine>(
          sys->pool.get(), sys->file.get(), sys->scheme.get());
      return sys;
    }();
    return system;
  }
};

void BM_ComputeChunkNums(benchmark::State& state) {
  MicroSystem* sys = MicroSystem::Get();
  const chunks::GroupBySpec spec{{2, 1, 2, 1}, 4};
  std::array<schema::OrdinalRange, storage::kMaxDims> sel{};
  sel[0] = {5, 30};
  sel[1] = {2, 15};
  sel[2] = {3, 20};
  sel[3] = {1, 8};
  for (auto _ : state) {
    uint64_t count = 0;
    const auto box = sys->scheme->BoxForSelection(spec, sel);
    box.ForEach(sys->scheme->GridFor(spec),
                [&](uint64_t num, const chunks::ChunkCoords&) {
                  benchmark::DoNotOptimize(num);
                  ++count;
                });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_ComputeChunkNums);

void BM_HashAggregate100k(benchmark::State& state) {
  MicroSystem* sys = MicroSystem::Get();
  schema::FactGenOptions gen;
  gen.num_tuples = 100000;
  auto tuples = schema::GenerateFactTuples(*sys->schema, gen);
  const chunks::GroupBySpec spec{{1, 1, 1, 1}, 4};
  for (auto _ : state) {
    backend::HashAggregator agg(sys->scheme.get(), spec);
    for (const auto& t : tuples) agg.AddBase(t);
    benchmark::DoNotOptimize(agg.TakeRows());
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_HashAggregate100k);

void BM_ComputeSingleChunk(benchmark::State& state) {
  MicroSystem* sys = MicroSystem::Get();
  const chunks::GroupBySpec spec{{2, 1, 2, 1}, 4};
  const uint64_t num_chunks = sys->scheme->GridFor(spec).num_chunks();
  uint64_t next = 0;
  for (auto _ : state) {
    WorkCounters work;
    auto data = sys->engine->ComputeChunks(spec, {next % num_chunks}, {},
                                           &work);
    if (!data.ok()) state.SkipWithError("compute failed");
    benchmark::DoNotOptimize(data);
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ComputeSingleChunk);

}  // namespace
}  // namespace chunkcache

BENCHMARK_MAIN();
