#include "bench/common/experiment.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>

namespace chunkcache::bench {

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig config;
  if (const char* scale_env = std::getenv("CHUNKCACHE_BENCH_SCALE")) {
    const double scale = std::atof(scale_env);
    if (scale > 0 && scale <= 1.0) {
      config.num_tuples =
          static_cast<uint64_t>(config.num_tuples * scale);
    }
  }
  if (const char* queries_env = std::getenv("CHUNKCACHE_BENCH_QUERIES")) {
    const long long n = std::atoll(queries_env);
    if (n > 0) config.stream_queries = static_cast<uint64_t>(n);
  }
  return config;
}

Result<std::unique_ptr<System>> System::Build(const ExperimentConfig& config) {
  auto system = std::unique_ptr<System>(new System(config));
  CHUNKCACHE_ASSIGN_OR_RETURN(schema::StarSchema schema,
                              schema::BuildPaperSchema());
  system->schema_ = std::make_unique<schema::StarSchema>(std::move(schema));

  chunks::ChunkingOptions copts;
  copts.range_fraction = config.range_fraction;
  CHUNKCACHE_ASSIGN_OR_RETURN(
      chunks::ChunkingScheme scheme,
      chunks::ChunkingScheme::Build(system->schema_.get(), copts,
                                    config.num_tuples));
  system->scheme_ =
      std::make_unique<chunks::ChunkingScheme>(std::move(scheme));

  schema::FactGenOptions gen;
  gen.num_tuples = config.num_tuples;
  gen.seed = config.data_seed;
  std::vector<storage::Tuple> tuples =
      schema::GenerateFactTuples(*system->schema_, gen);

  system->pool_ = std::make_unique<storage::BufferPool>(&system->disk_,
                                                        config.pool_frames);
  CHUNKCACHE_ASSIGN_OR_RETURN(
      backend::ChunkedFile file,
      backend::ChunkedFile::BulkLoad(system->pool_.get(),
                                     system->scheme_.get(),
                                     std::move(tuples)));
  system->file_ = std::make_unique<backend::ChunkedFile>(std::move(file));
  system->engine_ = std::make_unique<backend::BackendEngine>(
      system->pool_.get(), system->file_.get(), system->scheme_.get());
  CHUNKCACHE_RETURN_IF_ERROR(system->engine_->BuildBitmapIndexes());
  CHUNKCACHE_RETURN_IF_ERROR(system->ResetBackend());
  return system;
}

Status System::ResetBackend() {
  CHUNKCACHE_RETURN_IF_ERROR(pool_->FlushAll());
  CHUNKCACHE_RETURN_IF_ERROR(pool_->EvictAll());
  pool_->ResetStats();
  disk_.ResetStats();
  return Status::OK();
}

Result<StreamResult> RunStream(core::MiddleTier* tier,
                               workload::QueryGenerator* gen,
                               uint64_t num_queries,
                               const CostModel& cost_model) {
  StreamResult result;
  result.tier = tier->name();
  result.queries = num_queries;
  core::CsrAccumulator csr;
  std::deque<double> last100;
  double total_ms = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_queries; ++i) {
    const backend::StarJoinQuery q = gen->Next();
    core::QueryStats stats;
    auto rows = tier->Execute(q, &stats);
    if (!rows.ok()) return rows.status();
    const double ms = cost_model.Cost(stats.backend_work.pages_read,
                                      stats.backend_work.pages_written,
                                      stats.backend_work.tuples_processed);
    total_ms += ms;
    last100.push_back(ms);
    if (last100.size() > 100) last100.pop_front();
    csr.Record(stats);
    result.backend_pages += stats.backend_work.pages_read;
    result.backend_tuples += stats.backend_work.tuples_processed;
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  result.avg_ms_all = total_ms / static_cast<double>(num_queries);
  double last_sum = 0;
  for (double ms : last100) last_sum += ms;
  result.avg_ms_last100 =
      last100.empty() ? 0 : last_sum / static_cast<double>(last100.size());
  result.csr = csr.Csr();
  return result;
}

void PrintResult(const StreamResult& r, bool header) {
  if (header) {
    std::printf("%-14s %-12s %8s %14s %12s %8s %12s %14s %10s\n", "tier",
                "stream", "queries", "avg_ms(last100)", "avg_ms(all)", "CSR",
                "pages_read", "tuples_scanned", "wall_s");
  }
  std::printf("%-14s %-12s %8llu %14.1f %12.1f %8.3f %12llu %14llu %10.2f\n",
              r.tier.c_str(), r.stream.c_str(),
              static_cast<unsigned long long>(r.queries), r.avg_ms_last100,
              r.avg_ms_all, r.csr,
              static_cast<unsigned long long>(r.backend_pages),
              static_cast<unsigned long long>(r.backend_tuples),
              r.wall_seconds);
}

void PrintSetup(const ExperimentConfig& config, const std::string& title) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "setup: %llu tuples, Table-1 schema (D0 25/50/100, D1 25/50, "
      "D2 5/25/50, D3 10/50), pool %u pages, range fraction %.2f, "
      "cost model %.0fms/page + %.3fms/tuple\n",
      static_cast<unsigned long long>(config.num_tuples), config.pool_frames,
      config.range_fraction, config.cost_model.page_read_ms,
      config.cost_model.tuple_cpu_ms);
}

}  // namespace chunkcache::bench
