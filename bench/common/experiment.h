#ifndef CHUNKCACHE_BENCH_COMMON_EXPERIMENT_H_
#define CHUNKCACHE_BENCH_COMMON_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "chunks/chunking_scheme.h"
#include "common/cost_model.h"
#include "core/middle_tier.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace chunkcache::bench {

/// Experiment-wide configuration, defaulting to the paper's Section 6.1.1
/// setup: 500,000 base tuples over the Table 1 schema, an 8 MB backend
/// buffer pool, chunk ranges at 10 % of each level, and a 10 ms page / 1 us
/// tuple cost model standing in for the 1997 raw device.
struct ExperimentConfig {
  uint64_t num_tuples = 500000;
  uint64_t data_seed = 42;
  double range_fraction = 0.1;
  uint32_t pool_frames = 2048;  ///< 8 MiB at 4 KiB pages.
  uint64_t stream_queries = 1500;  ///< Paper: 1500-query streams.
  CostModel cost_model;

  /// Reads overrides from the environment: CHUNKCACHE_BENCH_SCALE (0..1]
  /// scales the tuple count, CHUNKCACHE_BENCH_QUERIES sets the stream
  /// length. Lets CI smoke-run every bench quickly.
  static ExperimentConfig FromEnv();
};

/// A fully built system: synthetic data bulk-loaded into a chunked file
/// with bitmap indexes, ready to attach middle tiers to.
class System {
 public:
  static Result<std::unique_ptr<System>> Build(const ExperimentConfig& config);

  schema::StarSchema& schema() { return *schema_; }
  chunks::ChunkingScheme& scheme() { return *scheme_; }
  backend::BackendEngine& engine() { return *engine_; }
  backend::ChunkedFile& file() { return *file_; }
  storage::BufferPool& pool() { return *pool_; }
  storage::InMemoryDiskManager& disk() { return disk_; }
  const ExperimentConfig& config() const { return config_; }

  /// Drops all cached pages and resets I/O statistics so the next run
  /// starts cold, as on the paper's raw device.
  Status ResetBackend();

 private:
  explicit System(ExperimentConfig config) : config_(config) {}

  ExperimentConfig config_;
  storage::InMemoryDiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<chunks::ChunkingScheme> scheme_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

/// Aggregate results of running one query stream against one middle tier.
struct StreamResult {
  std::string tier;
  std::string stream;
  uint64_t queries = 0;
  double avg_ms_all = 0;       ///< Modeled ms, averaged over every query.
  double avg_ms_last100 = 0;   ///< The paper's headline metric.
  double csr = 0;              ///< Cost saving ratio.
  uint64_t backend_pages = 0;
  uint64_t backend_tuples = 0;
  double wall_seconds = 0;     ///< Real elapsed time, for reference.
};

/// Runs `num_queries` from `gen` through `tier`, accumulating the paper's
/// metrics under `cost_model`.
Result<StreamResult> RunStream(core::MiddleTier* tier,
                               workload::QueryGenerator* gen,
                               uint64_t num_queries,
                               const CostModel& cost_model);

/// Prints one table row; header printed when `header` is true.
void PrintResult(const StreamResult& r, bool header);

/// Shared banner describing the experiment setup.
void PrintSetup(const ExperimentConfig& config, const std::string& title);

}  // namespace chunkcache::bench

#endif  // CHUNKCACHE_BENCH_COMMON_EXPERIMENT_H_
