// Multi-client scaling of the chunk-cache middle tier (the parallel
// miss-chunk pipeline). M client threads drain a shared, pre-generated
// query stream through one ChunkCacheManager configured with M worker
// threads and a sharded cache; we report aggregate throughput and the
// merged per-query latency distribution versus the thread count.
//
// The first row (1 client, num_workers = 1, 1 shard) is the exact serial
// paper path — no pool is even constructed — so it doubles as the
// no-regression baseline for the serial reproductions.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"

namespace chunkcache::bench {
namespace {

using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;

struct ConfigResult {
  uint32_t clients = 0;
  uint32_t shards = 0;
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  uint64_t errors = 0;
  uint64_t contention_ns = 0;
};

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted_ms->size() - 1));
  return (*sorted_ms)[idx];
}

ConfigResult RunConfig(System* sys,
                       const std::vector<backend::StarJoinQuery>& queries,
                       uint32_t clients, uint32_t workers, uint32_t shards) {
  // Cold start: fresh manager, cold buffer pool — every config does the
  // same total work from the same starting state.
  if (!sys->ResetBackend().ok()) return {};

  ChunkManagerOptions opts;
  opts.num_workers = workers;
  opts.cache_shards = shards;
  ChunkCacheManager mgr(&sys->engine(), opts);

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<double>> latencies(clients);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(queries.size() / clients + 1);
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        QueryStats st;
        const auto q0 = std::chrono::steady_clock::now();
        auto rows = mgr.Execute(queries[i], &st);
        const auto q1 = std::chrono::steady_clock::now();
        if (!rows.ok()) errors.fetch_add(1);
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(q1 - q0).count());
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();

  std::vector<double> merged;
  merged.reserve(queries.size());
  for (auto& v : latencies) merged.insert(merged.end(), v.begin(), v.end());
  std::sort(merged.begin(), merged.end());

  ConfigResult r;
  r.clients = clients;
  r.shards = shards;
  r.qps = wall_s > 0 ? static_cast<double>(queries.size()) / wall_s : 0;
  r.p50_ms = Percentile(&merged, 0.50);
  r.p95_ms = Percentile(&merged, 0.95);
  r.errors = errors.load();
  // Background prefetch tasks also touch the cache; drain them so the
  // contention snapshot covers the whole configuration's work.
  mgr.DrainPrefetch();
  r.contention_ns = mgr.StatsSnapshot().contention_ns;
  return r;
}

int Run() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Concurrency scaling: M clients, M workers, 16 shards");

  auto sys = System::Build(config);
  if (!sys.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 sys.status().ToString().c_str());
    return 1;
  }

  // One shared stream so every configuration answers the *same* queries.
  workload::WorkloadOptions wopts;
  wopts.seed = 7;
  workload::QueryGenerator gen(&(*sys)->schema(), wopts);
  std::vector<backend::StarJoinQuery> queries;
  queries.reserve(config.stream_queries);
  for (uint64_t i = 0; i < config.stream_queries; ++i) {
    queries.push_back(gen.Next());
  }

  std::printf("%-8s %-8s %-8s %12s %10s %10s %10s %12s\n", "clients",
              "workers", "shards", "qps", "p50(ms)", "p95(ms)", "speedup",
              "lock-wait(ms)");

  double base_qps = 0;
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (uint32_t m : {1u, 2u, 4u, 8u}) {
    // The m = 1 row uses the serial configuration (no pool, one shard);
    // parallel rows get one worker per client and a 16-way sharded cache.
    const uint32_t workers = m;
    const uint32_t shards = m == 1 ? 1 : 16;
    ConfigResult r = RunConfig(sys->get(), queries, m, workers, shards);
    if (m == 1) base_qps = r.qps;
    std::printf("%-8u %-8u %-8u %12.1f %10.3f %10.3f %9.2fx %12.2f\n",
                r.clients, workers, r.shards, r.qps, r.p50_ms, r.p95_ms,
                base_qps > 0 ? r.qps / base_qps : 0,
                static_cast<double>(r.contention_ns) / 1e6);
    if (r.errors != 0) {
      std::fprintf(stderr, "config %u: %llu queries failed\n", m,
                   static_cast<unsigned long long>(r.errors));
      return 1;
    }
    if (m > hw) {
      std::printf("(note: %u clients oversubscribe %u hardware threads)\n",
                  m, hw);
    }
  }
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
