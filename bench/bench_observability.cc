// Measures what the observability layer costs: the metric and trace hooks
// themselves, and the end-to-end effect on a query stream.
//
// Four sections:
//   1. hooks     — per-op cost of a striped Counter::Increment, a
//                  Histogram::Record, an armed span Begin/End pair and a
//                  disarmed (null-recorder) pair, measured like
//                  bench_faults measures the fault hook: noinline ops
//                  through a function pointer, hooked minus baseline.
//   2. disarmed  — query-stream throughput with tracing off
//                  (trace_capacity = 0, the default configuration;
//                  metrics counters are always on — they ARE the stats).
//   3. armed     — the same cold stream with per-query tracing on, plus
//                  the observed metric updates, histogram records and
//                  spans per query read back from the registry/recorder.
//   4. verdict   — the computed overhead, bench_faults-style:
//                    overhead_pct = 100 * (updates/query * counter_ns
//                                   + records/query * histogram_ns
//                                   + spans/query * span_ns) / per_query_ns
//                  CI asserts it stays <= 2 % of a healthy query.
//
// Results go to stdout AND to BENCH_observability.json (machine readable;
// CI validates its schema). Honors CHUNKCACHE_BENCH_SCALE /
// CHUNKCACHE_BENCH_QUERIES via ExperimentConfig::FromEnv.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>

#include "bench/common/experiment.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/chunk_cache_manager.h"
#include "workload/query_generator.h"

namespace chunkcache::bench {
namespace {

using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The hooked ops differ from the baseline only in the metric call; all are
// noinline and called through a function pointer so the compiler cannot
// specialize either loop (the bench_faults methodology).
Counter g_counter("bench.counter");
Histogram g_histogram("bench.histogram");

__attribute__((noinline)) uint64_t CounterOp(uint64_t x, uint64_t* sink) {
  g_counter.Increment();
  *sink += x ^ (x >> 7);
  return 0;
}

__attribute__((noinline)) uint64_t HistogramOp(uint64_t x, uint64_t* sink) {
  g_histogram.Record(x);
  *sink += x ^ (x >> 7);
  return 0;
}

__attribute__((noinline)) uint64_t PlainOp(uint64_t x, uint64_t* sink) {
  *sink += x ^ (x >> 7);
  return 0;
}

/// Best-of-3 per-call time of `op` over `iters` calls, in nanoseconds.
double TimeOpNs(uint64_t (*op)(uint64_t, uint64_t*), uint64_t iters) {
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    uint64_t sink = 0;
    const double t0 = NowNs();
    for (uint64_t i = 0; i < iters; ++i) sink += op(i, &sink);
    const double elapsed = NowNs() - t0;
    asm volatile("" ::"r"(sink));
    best = std::min(best, elapsed / static_cast<double>(iters));
  }
  return best;
}

/// Best-of-3 per-span cost of an armed (or, with rec == nullptr, disarmed)
/// Begin/End pair, amortizing builder construction and Finish over
/// kSpansPerTrace spans per trace.
double TimeSpanPairNs(TraceRecorder* rec, uint64_t iters) {
  constexpr uint64_t kSpansPerTrace = 64;
  const uint64_t traces = std::max<uint64_t>(1, iters / kSpansPerTrace);
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = NowNs();
    for (uint64_t t = 0; t < traces; ++t) {
      TraceBuilder b(rec, "bench");
      for (uint64_t i = 0; i < kSpansPerTrace; ++i) {
        const uint32_t s = b.BeginSpan("op", b.root());
        b.Tag(s, "i", i);
        b.EndSpan(s);
      }
      b.Finish();
    }
    const double elapsed = NowNs() - t0;
    best = std::min(best,
                    elapsed / static_cast<double>(traces * kSpansPerTrace));
  }
  return best;
}

ChunkManagerOptions TierOptions(uint32_t trace_capacity) {
  ChunkManagerOptions opts;
  opts.num_workers = 4;
  opts.cache_shards = 8;
  opts.trace_capacity = trace_capacity;
  return opts;
}

struct InstrumentedStream {
  StreamResult stream;
  double metric_updates_per_query = 0;   ///< Folded counter total / queries.
  double hist_records_per_query = 0;     ///< Histogram count total / queries.
  double spans_per_query = 0;            ///< Mean spans per retained trace.
};

/// One full cold-start pass of the workload stream (fresh tier, reset
/// backend, regenerated queries), reading the per-query observability
/// volume back off the tier before it is torn down.
Result<InstrumentedStream> RunColdStream(System* sys, uint64_t num_queries,
                                         uint32_t trace_capacity) {
  CHUNKCACHE_RETURN_IF_ERROR(sys->ResetBackend());
  ChunkCacheManager tier(&sys->engine(), TierOptions(trace_capacity));
  workload::WorkloadOptions wopts;
  wopts.seed = 1998;
  workload::QueryGenerator gen(&sys->schema(), wopts);
  InstrumentedStream out;
  CHUNKCACHE_ASSIGN_OR_RETURN(
      out.stream,
      RunStream(&tier, &gen, num_queries, sys->config().cost_model));
  tier.DrainPrefetch();

  // Observed volume: every counter add and histogram record of the run is
  // in the registry (counter folds over-count multi-unit Adds as one
  // update each unit, which only makes the computed overhead conservative).
  const MetricsRegistry::Snapshot snap = tier.metrics().TakeSnapshot();
  uint64_t counter_total = 0;
  for (const auto& [name, v] : snap.counters) counter_total += v;
  uint64_t hist_total = 0;
  for (const auto& [name, h] : snap.histograms) hist_total += h.count;
  out.metric_updates_per_query =
      static_cast<double>(counter_total) / static_cast<double>(num_queries);
  out.hist_records_per_query =
      static_cast<double>(hist_total) / static_cast<double>(num_queries);
  if (TraceRecorder* rec = tier.trace_recorder()) {
    uint64_t spans = 0;
    const auto latest = rec->Latest(rec->capacity());
    for (const QueryTrace& t : latest) spans += t.spans.size();
    if (!latest.empty()) {
      out.spans_per_query =
          static_cast<double>(spans) / static_cast<double>(latest.size());
    }
  }
  return out;
}

Status Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Observability hooks: metric/span cost and overhead");

  // 1. The hooks themselves.
  constexpr uint64_t kHookIters = 20 * 1000 * 1000;
  const double plain_ns = TimeOpNs(&PlainOp, kHookIters);
  const double counter_ns =
      std::max(0.0, TimeOpNs(&CounterOp, kHookIters) - plain_ns);
  const double histogram_ns =
      std::max(0.0, TimeOpNs(&HistogramOp, kHookIters) - plain_ns);
  TraceRecorder rec(2);
  constexpr uint64_t kSpanIters = 2 * 1000 * 1000;
  const double span_ns = TimeSpanPairNs(&rec, kSpanIters);
  const double disarmed_span_ns = TimeSpanPairNs(nullptr, kSpanIters * 4);
  std::printf(
      "hooks: counter %.3f ns, histogram %.3f ns, armed span %.1f ns, "
      "disarmed span %.3f ns (baseline op %.3f ns)\n",
      counter_ns, histogram_ns, span_ns, disarmed_span_ns, plain_ns);

  CHUNKCACHE_ASSIGN_OR_RETURN(std::unique_ptr<System> sys,
                              System::Build(config));
  const uint64_t num_queries = config.stream_queries;

  // 2. Tracing off (the default): this is the production baseline.
  CHUNKCACHE_ASSIGN_OR_RETURN(const InstrumentedStream disarmed,
                              RunColdStream(sys.get(), num_queries, 0));
  const double per_query_ns = disarmed.stream.wall_seconds * 1e9 /
                              static_cast<double>(num_queries);
  const double disarmed_qps =
      disarmed.stream.wall_seconds > 0
          ? static_cast<double>(num_queries) / disarmed.stream.wall_seconds
          : 0;
  std::printf("tracing off: %.0f q/s (%.0f us/query), %.0f metric updates "
              "+ %.1f histogram records per query\n",
              disarmed_qps, per_query_ns / 1000.0,
              disarmed.metric_updates_per_query,
              disarmed.hist_records_per_query);

  // 3. Tracing on: same cold stream with span trees retained.
  CHUNKCACHE_ASSIGN_OR_RETURN(const InstrumentedStream armed,
                              RunColdStream(sys.get(), num_queries, 256));
  const double armed_qps =
      armed.stream.wall_seconds > 0
          ? static_cast<double>(num_queries) / armed.stream.wall_seconds
          : 0;
  std::printf("tracing on:  %.0f q/s, %.1f spans per query\n", armed_qps,
              armed.spans_per_query);

  // 4. Computed overhead of the always-on hooks plus armed tracing,
  // against the healthy per-query time (bench_faults methodology: volume
  // times micro-cost, not the difference of two noisy wall times).
  const double overhead_pct =
      per_query_ns > 0
          ? 100.0 *
                (disarmed.metric_updates_per_query * counter_ns +
                 disarmed.hist_records_per_query * histogram_ns +
                 armed.spans_per_query * span_ns) /
                per_query_ns
          : 0;
  std::printf("computed observability overhead: %.4f%% of a query "
              "(CI bar: 2%%)\n", overhead_pct);

  std::FILE* out = std::fopen("BENCH_observability.json", "w");
  if (out == nullptr) {
    return Status::IoError("cannot write BENCH_observability.json");
  }
  std::fprintf(
      out,
      "{\n  \"bench\": \"observability\",\n  \"num_tuples\": %llu,\n"
      "  \"queries\": %llu,\n"
      "  \"counter_inc_ns\": %.4f,\n  \"histogram_record_ns\": %.4f,\n"
      "  \"span_ns\": %.4f,\n  \"disarmed_span_ns\": %.4f,\n"
      "  \"metric_updates_per_query\": %.1f,\n"
      "  \"histogram_records_per_query\": %.1f,\n"
      "  \"spans_per_query\": %.1f,\n"
      "  \"disarmed_qps\": %.1f,\n  \"armed_qps\": %.1f,\n"
      "  \"per_query_ns\": %.1f,\n  \"overhead_pct\": %.4f\n}\n",
      static_cast<unsigned long long>(config.num_tuples),
      static_cast<unsigned long long>(num_queries), counter_ns, histogram_ns,
      span_ns, disarmed_span_ns, disarmed.metric_updates_per_query,
      disarmed.hist_records_per_query, armed.spans_per_query, disarmed_qps,
      armed_qps, per_query_ns, overhead_pct);
  std::fclose(out);
  std::printf("\nwrote BENCH_observability.json\n");
  return Status::OK();
}

}  // namespace
}  // namespace chunkcache::bench

int main() {
  const chunkcache::Status s = chunkcache::bench::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench_observability failed: %s\n",
                 s.message().c_str());
    return 1;
  }
  return 0;
}
