// Measures what the robustness layer costs when nothing is failing, and
// what it delivers when things are.
//
// Four sections:
//   1. hook        — the disarmed CHUNKCACHE_FAULT_POINT itself: a hooked
//                    vs unhooked noinline op timed over millions of calls;
//                    the difference is the per-hook nanosecond cost.
//   2. disarmed    — query-stream throughput with the injector fully
//                    disarmed (the production configuration).
//   3. armed-zero  — the same stream with every site armed at probability
//                    zero, which makes the injector count how many fault
//                    points a real query actually crosses (checks/query);
//                    nothing fires, so the stream result is unchanged.
//   4. storm       — ArmAll at a small probability against a retry- and
//                    degraded-mode-enabled tier: error taxonomy plus the
//                    injected/retried/degraded counters.
//
// The headline number is
//   overhead_pct = 100 * checks_per_query * hook_ns / per_query_ns
// i.e. the fraction of a healthy query spent in disarmed hooks. CI
// asserts it stays <= 1 %.
//
// Results go to stdout AND to BENCH_faults.json (machine readable; CI
// validates its schema). Honors CHUNKCACHE_BENCH_SCALE /
// CHUNKCACHE_BENCH_QUERIES via ExperimentConfig::FromEnv.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>

#include "bench/common/experiment.h"
#include "common/fault_injector.h"
#include "common/retry.h"
#include "core/chunk_cache_manager.h"
#include "workload/query_generator.h"

namespace chunkcache::bench {
namespace {

using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The two ops differ only in the fault point; both are noinline and called
// through a function pointer so the compiler cannot specialize either loop.
__attribute__((noinline)) Status HookedOp(uint64_t x, uint64_t* sink) {
  CHUNKCACHE_FAULT_POINT(FaultSite::kDiskRead);
  *sink += x ^ (x >> 7);
  return Status::OK();
}

__attribute__((noinline)) Status PlainOp(uint64_t x, uint64_t* sink) {
  *sink += x ^ (x >> 7);
  return Status::OK();
}

/// Best-of-3 per-call time of `op` over `iters` calls, in nanoseconds.
double TimeOpNs(Status (*op)(uint64_t, uint64_t*), uint64_t iters) {
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    uint64_t sink = 0;
    const double t0 = NowNs();
    for (uint64_t i = 0; i < iters; ++i) {
      const Status s = op(i, &sink);
      if (!s.ok()) return -1;  // disarmed: can never happen
    }
    const double elapsed = NowNs() - t0;
    asm volatile("" ::"r"(sink));
    best = std::min(best, elapsed / static_cast<double>(iters));
  }
  return best;
}

ChunkManagerOptions TierOptions() {
  ChunkManagerOptions opts;
  opts.num_workers = 4;
  opts.cache_shards = 8;
  return opts;
}

/// One full cold-start pass of the workload stream (fresh tier, reset
/// backend, regenerated queries) so the disarmed and armed-at-zero runs
/// cross exactly the same fault points.
Result<StreamResult> RunColdStream(System* sys, uint64_t num_queries) {
  CHUNKCACHE_RETURN_IF_ERROR(sys->ResetBackend());
  ChunkCacheManager tier(&sys->engine(), TierOptions());
  workload::WorkloadOptions wopts;
  wopts.seed = 1998;
  workload::QueryGenerator gen(&sys->schema(), wopts);
  return RunStream(&tier, &gen, num_queries, sys->config().cost_model);
}

struct StormResult {
  uint64_t queries = 0;
  uint64_t ok = 0;
  uint64_t io_errors = 0;
  uint64_t corruption = 0;
  uint64_t resource_exhausted = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t unexpected_errors = 0;  ///< Any other failure code: must be 0.
  uint64_t faults_injected = 0;
  uint64_t retries = 0;
  uint64_t degraded_answers = 0;
  uint64_t checksum_failures = 0;
  uint64_t deadline_expired = 0;
};

/// Seeded fault storm: every site armed at `probability` against a tier
/// with retries and closure-property degraded answering enabled. Every
/// fourth query carries a deadline to exercise that path too.
Result<StormResult> RunStorm(System* sys, uint64_t num_queries,
                             double probability) {
  CHUNKCACHE_RETURN_IF_ERROR(sys->ResetBackend());
  ChunkCacheManager tier(&sys->engine(), TierOptions());
  workload::WorkloadOptions wopts;
  wopts.seed = 1998;
  workload::QueryGenerator gen(&sys->schema(), wopts);

  FaultInjector& fi = FaultInjector::Global();
  fi.Seed(0xBADF00D5ull);
  fi.ResetCounters();
  fi.ArmAll(probability);

  StormResult res;
  res.queries = num_queries;
  for (uint64_t i = 0; i < num_queries; ++i) {
    const backend::StarJoinQuery q = gen.Next();
    QueryStats st;
    ExecControl ctrl;
    if (i % 4 == 3) ctrl.deadline = Deadline::AfterMs(250);
    const auto r = tier.Execute(q, &st, ctrl);
    if (r.ok()) {
      ++res.ok;
      continue;
    }
    switch (r.status().code()) {
      case StatusCode::kIoError:
        ++res.io_errors;
        break;
      case StatusCode::kCorruption:
        ++res.corruption;
        break;
      case StatusCode::kResourceExhausted:
        ++res.resource_exhausted;
        break;
      case StatusCode::kDeadlineExceeded:
        ++res.deadline_exceeded;
        break;
      default:
        ++res.unexpected_errors;
        break;
    }
  }
  const cache::ChunkCacheStats cs = tier.StatsSnapshot();
  res.faults_injected = fi.faults_injected();
  res.retries = cs.retries;
  res.degraded_answers = cs.degraded_answers;
  res.checksum_failures = cs.checksum_failures;
  res.deadline_expired = cs.deadline_expired;
  fi.DisarmAll();
  fi.ResetCounters();
  return res;
}

Status Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config,
             "Fault hooks: disarmed overhead and storm behavior");
  FaultInjector& fi = FaultInjector::Global();
  fi.DisarmAll();
  fi.ResetCounters();

  // 1. The hook itself, disarmed.
  constexpr uint64_t kHookIters = 20 * 1000 * 1000;
  const double hooked_ns = TimeOpNs(&HookedOp, kHookIters);
  const double plain_ns = TimeOpNs(&PlainOp, kHookIters);
  const double hook_ns = std::max(0.0, hooked_ns - plain_ns);
  std::printf("hook: %.3f ns disarmed (hooked %.3f, baseline %.3f)\n",
              hook_ns, hooked_ns, plain_ns);

  CHUNKCACHE_ASSIGN_OR_RETURN(std::unique_ptr<System> sys,
                              System::Build(config));
  const uint64_t num_queries = config.stream_queries;

  // 2. Disarmed stream.
  CHUNKCACHE_ASSIGN_OR_RETURN(const StreamResult disarmed,
                              RunColdStream(sys.get(), num_queries));
  const double disarmed_qps =
      disarmed.wall_seconds > 0
          ? static_cast<double>(num_queries) / disarmed.wall_seconds
          : 0;
  const double per_query_ns =
      disarmed.wall_seconds * 1e9 / static_cast<double>(num_queries);
  std::printf("disarmed: %.0f q/s (%.0f us/query)\n", disarmed_qps,
              per_query_ns / 1000.0);

  // 3. Same stream, every site armed at probability zero: counts the
  // fault points a query actually crosses without changing any result.
  fi.ArmAll(0.0);
  fi.ResetCounters();
  CHUNKCACHE_ASSIGN_OR_RETURN(const StreamResult armed_zero,
                              RunColdStream(sys.get(), num_queries));
  const double checks_per_query =
      static_cast<double>(fi.checks()) / static_cast<double>(num_queries);
  if (fi.faults_injected() != 0) {
    return Status::Internal("probability-zero sites injected faults");
  }
  fi.DisarmAll();
  fi.ResetCounters();
  const double armed_zero_qps =
      armed_zero.wall_seconds > 0
          ? static_cast<double>(num_queries) / armed_zero.wall_seconds
          : 0;
  const double overhead_pct =
      per_query_ns > 0 ? 100.0 * checks_per_query * hook_ns / per_query_ns
                       : 0;
  std::printf(
      "armed@0: %.0f q/s, %.0f checks/query -> disarmed hook overhead "
      "%.4f%% of a query\n",
      armed_zero_qps, checks_per_query, overhead_pct);

  // 4. Storm.
  const uint64_t storm_queries = std::min<uint64_t>(num_queries, 300);
  CHUNKCACHE_ASSIGN_OR_RETURN(const StormResult storm,
                              RunStorm(sys.get(), storm_queries, 0.005));
  std::printf(
      "storm (p=0.005, %llu queries): %llu ok, %llu io, %llu corrupt, "
      "%llu exhausted, %llu deadline, %llu unexpected\n",
      static_cast<unsigned long long>(storm.queries),
      static_cast<unsigned long long>(storm.ok),
      static_cast<unsigned long long>(storm.io_errors),
      static_cast<unsigned long long>(storm.corruption),
      static_cast<unsigned long long>(storm.resource_exhausted),
      static_cast<unsigned long long>(storm.deadline_exceeded),
      static_cast<unsigned long long>(storm.unexpected_errors));
  std::printf(
      "storm counters: %llu faults injected, %llu retries, %llu degraded "
      "answers, %llu checksum failures, %llu deadline expirations\n",
      static_cast<unsigned long long>(storm.faults_injected),
      static_cast<unsigned long long>(storm.retries),
      static_cast<unsigned long long>(storm.degraded_answers),
      static_cast<unsigned long long>(storm.checksum_failures),
      static_cast<unsigned long long>(storm.deadline_expired));

  std::FILE* out = std::fopen("BENCH_faults.json", "w");
  if (out == nullptr) {
    return Status::IoError("cannot write BENCH_faults.json");
  }
  std::fprintf(out,
               "{\n  \"bench\": \"faults\",\n  \"num_tuples\": %llu,\n"
               "  \"queries\": %llu,\n"
               "  \"hook_ns\": %.4f,\n  \"checks_per_query\": %.1f,\n"
               "  \"disarmed_qps\": %.1f,\n  \"armed_zero_qps\": %.1f,\n"
               "  \"per_query_ns\": %.1f,\n  \"overhead_pct\": %.4f,\n",
               static_cast<unsigned long long>(config.num_tuples),
               static_cast<unsigned long long>(num_queries), hook_ns,
               checks_per_query, disarmed_qps, armed_zero_qps, per_query_ns,
               overhead_pct);
  std::fprintf(
      out,
      "  \"storm\": {\"probability\": 0.005, \"queries\": %llu, "
      "\"ok\": %llu, \"io_errors\": %llu, \"corruption\": %llu, "
      "\"resource_exhausted\": %llu, \"deadline_exceeded\": %llu, "
      "\"unexpected_errors\": %llu, \"faults_injected\": %llu, "
      "\"retries\": %llu, \"degraded_answers\": %llu, "
      "\"checksum_failures\": %llu, \"deadline_expired\": %llu}\n}\n",
      static_cast<unsigned long long>(storm.queries),
      static_cast<unsigned long long>(storm.ok),
      static_cast<unsigned long long>(storm.io_errors),
      static_cast<unsigned long long>(storm.corruption),
      static_cast<unsigned long long>(storm.resource_exhausted),
      static_cast<unsigned long long>(storm.deadline_exceeded),
      static_cast<unsigned long long>(storm.unexpected_errors),
      static_cast<unsigned long long>(storm.faults_injected),
      static_cast<unsigned long long>(storm.retries),
      static_cast<unsigned long long>(storm.degraded_answers),
      static_cast<unsigned long long>(storm.checksum_failures),
      static_cast<unsigned long long>(storm.deadline_expired));
  std::fclose(out);
  std::printf("\nwrote BENCH_faults.json\n");
  return Status::OK();
}

}  // namespace
}  // namespace chunkcache::bench

int main() {
  const chunkcache::Status s = chunkcache::bench::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench_faults failed: %s\n", s.message().c_str());
    return 1;
  }
  return 0;
}
