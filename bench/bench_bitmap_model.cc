// Validates the Section 4.2 analytical model against measurement. The
// paper derives, via the balls-in-bins expectation
//     f(r, k) = k - k (1 - 1/k)^r,
// that a point selection matching n tuples touches p = f(n, P) pages of a
// randomly ordered P-page fact file, but only p_c <= f(n, E) pages of a
// chunked file, where E is the number of pages holding the eligible
// chunks (the 2-d paper case gives E = sqrt(P)). This bench measures the
// distinct fact pages actually fetched for point selections and compares
// them with the model.

#include <cmath>
#include <cstdio>
#include <memory>
#include <set>

#include "bench/common/experiment.h"

namespace chunkcache::bench {
namespace {

double F(double r, double k) {
  return k - k * std::pow(1.0 - 1.0 / k, r);
}

int Run() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config, "Section 4.2 model: f(r,k) page-touch analysis");
  auto s = schema::BuildPaperSchema();
  if (!s.ok()) return 1;
  auto schema = std::make_unique<schema::StarSchema>(std::move(s).value());
  chunks::ChunkingOptions copts;
  copts.range_fraction = config.range_fraction;
  auto scheme_or = chunks::ChunkingScheme::Build(schema.get(), copts,
                                                 config.num_tuples);
  if (!scheme_or.ok()) return 1;
  auto scheme = std::make_unique<chunks::ChunkingScheme>(
      std::move(scheme_or).value());
  schema::FactGenOptions gen;
  gen.num_tuples = config.num_tuples;
  gen.seed = config.data_seed;

  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, config.pool_frames);

  auto build = [&](bool clustered) {
    return backend::ChunkedFile::BulkLoad(
        &pool, scheme.get(), schema::GenerateFactTuples(*schema, gen),
        clustered);
  };
  auto random_file = build(false);
  auto chunked_file = build(true);
  if (!random_file.ok() || !chunked_file.ok()) return 1;

  const double P = random_file->fact_file().num_data_pages();
  const uint32_t n0 =
      scheme->GridFor(scheme->BaseSpec()).NumRangesOnDim(0);

  std::printf("%-10s %10s | %12s %12s | %12s %12s\n", "selection", "n(tuples)",
              "rand model", "rand meas", "chunk model", "chunk meas");

  // Point selections A = x on dimension 0 for several members.
  for (uint32_t x : {0u, 17u, 42u, 63u, 88u}) {
    // Collect matching row ids per file and count distinct pages.
    double measured[2];
    uint64_t matches = 0;
    int idx = 0;
    for (backend::ChunkedFile* file : {&*random_file, &*chunked_file}) {
      std::set<uint32_t> pages;
      uint64_t n = 0;
      Status st = file->Scan([&](storage::RowId rid, const storage::Tuple& t) {
        if (t.keys[0] == x) {
          pages.insert(file->fact_file().PageOfRow(rid));
          ++n;
        }
        return true;
      });
      if (!st.ok()) return 1;
      measured[idx] = static_cast<double>(pages.size());
      matches = n;
      ++idx;
    }
    const double model_random = F(static_cast<double>(matches), P);
    // Eligible pages in the chunked file: the contiguous slab of chunks
    // whose D0 range holds x. The slab holds the fraction of tuples whose
    // D0 value falls in that range (ranges are uneven after hierarchy
    // alignment, so use the actual range width).
    const auto& dc = scheme->dim_chunking(0);
    const auto& h = schema->dimension(0).hierarchy;
    const uint32_t range_width =
        dc.Range(h.depth(), dc.RangeOfValue(h.depth(), x)).size();
    const double slab_pages =
        P * static_cast<double>(range_width) / h.LevelCardinality(h.depth());
    const double model_chunked = F(static_cast<double>(matches), slab_pages);
    char label[16];
    std::snprintf(label, sizeof(label), "D0=%u", x);
    std::printf("%-10s %10llu | %12.0f %12.0f | %12.0f %12.0f\n", label,
                static_cast<unsigned long long>(matches), model_random,
                measured[0], model_chunked, measured[1]);
  }
  std::printf(
      "(model: f(r,k) = k - k(1-1/k)^r; chunked eligible pages = P / %u "
      "D0-slabs; P = %.0f pages)\n",
      n0, P);
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
