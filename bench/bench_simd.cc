// SIMD hot-path benchmark: what does AVX2 dispatch buy over the scalar
// kernels, on the same machine, with everything else held fixed?
//
// Four experiments, each timed once with dispatch pinned to scalar and
// once pinned to AVX2 via simd::ScopedLevel:
//   1. Dense-grid fold throughput (rows/s) on the paper's 4-d schema at
//      the base group-by — the AddBaseColumns hot loop.
//   2. Codec decode throughput (GB/s of raw payload) on a representative
//      sorted chunk blob — dict unpack, delta/dod prefix sums, XOR-double
//      reconstruction all fire.
//   3. Bitmap word kernels (GB/s): And, Or, CountSet over multi-megabit
//      bitmaps.
//   4. End-to-end Table-1 session mix with chunk compression ON: average
//      per-query wall time across a query stream, scalar vs AVX2, with a
//      result-hash check that both levels answer bit-identically.
//
// Results go to stdout as tables AND to BENCH_simd.json (machine
// readable; CI validates its schema). Honors CHUNKCACHE_BENCH_SCALE via
// ExperimentConfig::FromEnv like the other benches.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>
#include <memory>
#include <random>
#include <vector>

#include "backend/aggregator.h"
#include "backend/star_join_query.h"
#include "bench/common/experiment.h"
#include "chunks/chunking_scheme.h"
#include "common/simd.h"
#include "core/chunk_cache_manager.h"
#include "index/bitmap.h"
#include "schema/synthetic.h"
#include "storage/codec.h"
#include "workload/query_generator.h"

namespace chunkcache::bench {
namespace {

using backend::ChunkAggregator;
using backend::ResultRow;
using backend::StarJoinQuery;
using chunks::ChunkCoords;
using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using chunks::GroupBySpec;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;
using index::Bitmap;
using storage::AggColumns;
using storage::Tuple;
using storage::TupleColumns;

namespace codec = storage::codec;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One scalar-vs-AVX2 measurement pair plus the derived speedup.
struct Pair {
  double scalar = 0;
  double avx2 = 0;
  double speedup() const { return scalar > 0 ? avx2 / scalar : 0; }
};

// ------------------------------- dense fold ---------------------------------

struct FoldBench {
  Pair rows_per_sec;
  uint64_t rows_folded = 0;
  uint64_t result_hash_scalar = 0;
  uint64_t result_hash_avx2 = 0;
};

uint64_t HashCols(const AggColumns& cols, uint64_t acc) {
  auto mix = [&acc](const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    for (size_t i = 0; i < n; ++i) acc = (acc ^ b[i]) * 0x100000001b3ULL;
  };
  for (uint32_t d = 0; d < cols.num_dims(); ++d) {
    mix(cols.coords(d).data(), cols.coords(d).size() * 4);
  }
  mix(cols.sums().data(), cols.size() * 8);
  mix(cols.counts().data(), cols.size() * 8);
  mix(cols.mins().data(), cols.size() * 8);
  mix(cols.maxs().data(), cols.size() * 8);
  return acc;
}

/// Routes `tuples` to their chunks at `target`, keeps the `max_chunks`
/// most populated chunks, and lengthens each kept batch to at least
/// `min_rows_per_chunk` rows by cycling its own tuples. The replication
/// keeps the timed region dominated by the fold kernel instead of
/// per-chunk setup while preserving the chunk's real cell box and key
/// distribution; the identity hash is computed from single (unreplicated)
/// folds either way.
FoldBench RunFoldBench(const schema::StarSchema& schema,
                       const ChunkingScheme& scheme,
                       const std::vector<Tuple>& tuples,
                       const GroupBySpec& target, int reps,
                       size_t min_rows_per_chunk, size_t max_chunks) {
  std::map<uint64_t, TupleColumns> routed;
  for (const Tuple& t : tuples) {
    ChunkCoords coords{};
    for (uint32_t d = 0; d < target.num_dims; ++d) {
      const auto& h = schema.dimension(d).hierarchy;
      coords[d] = h.AncestorAt(h.depth(), t.keys[d], target.levels[d]);
    }
    TupleColumns& batch = routed[scheme.ChunkOfCell(target, coords)];
    batch.num_dims = target.num_dims;
    batch.PushTuple(t);
  }
  std::vector<std::pair<uint64_t, TupleColumns>> batches;
  for (auto& [chunk_num, batch] : routed) {
    batches.emplace_back(chunk_num, std::move(batch));
  }
  std::sort(batches.begin(), batches.end(),
            [](const auto& a, const auto& b) {
              return a.second.size() > b.second.size();
            });
  if (batches.size() > max_chunks) batches.resize(max_chunks);
  for (auto& [chunk_num, batch] : batches) {
    const size_t orig = batch.size();
    if (orig == 0) continue;
    while (batch.size() < min_rows_per_chunk) {
      const size_t take = std::min(orig, min_rows_per_chunk - batch.size());
      for (uint32_t d = 0; d < batch.num_dims; ++d) {
        batch.keys[d].insert(batch.keys[d].end(), batch.keys[d].begin(),
                             batch.keys[d].begin() + take);
      }
      batch.measure.insert(batch.measure.end(), batch.measure.begin(),
                           batch.measure.begin() + take);
    }
  }

  FoldBench out;
  // Times ONLY the AddBaseColumns fold loop — aggregator construction
  // (zeroing the dense cell box) and result extraction are identical at
  // both dispatch levels and would otherwise swamp the kernel. Each
  // chunk's batch is folded exactly once per pass, matching how query
  // execution folds each chunk run: against cells the fold itself has
  // not yet pulled into cache.
  auto fold_pass = [&]() {
    uint64_t rows = 0;
    double ms = 0;
    for (const auto& [chunk_num, batch] : batches) {
      ChunkAggregator agg(&scheme, target, chunk_num, ~0ull);
      const double t0 = NowMs();
      agg.AddBaseColumns(batch, nullptr, nullptr);
      ms += NowMs() - t0;
      rows += agg.rows_consumed();
    }
    out.rows_folded = rows;
    return ms;
  };
  // A separate untimed single-fold pass produces the identity hash.
  auto hash_pass = [&]() {
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (const auto& [chunk_num, batch] : batches) {
      ChunkAggregator agg(&scheme, target, chunk_num, ~0ull);
      agg.AddBaseColumns(batch, nullptr, nullptr);
      hash = HashCols(agg.TakeColumns(), hash);
    }
    return hash;
  };
  auto timed_at = [&](simd::IsaLevel level) {
    simd::ScopedLevel pin(level);
    return fold_pass();
  };
  {
    simd::ScopedLevel pin(simd::IsaLevel::kScalar);
    out.result_hash_scalar = hash_pass();  // doubles as warmup
  }
  {
    simd::ScopedLevel pin(simd::IsaLevel::kAvx2);
    out.result_hash_avx2 = hash_pass();
  }
  // The two levels are timed back to back inside each rep so slow
  // frequency drift (shared VMs) cancels out of the ratio instead of
  // biasing whichever level ran later.
  double best_scalar_ms = 0, best_avx2_ms = 0;
  for (int r = 0; r < reps; ++r) {
    const double s = timed_at(simd::IsaLevel::kScalar);
    const double v = timed_at(simd::IsaLevel::kAvx2);
    if (r == 0 || s < best_scalar_ms) best_scalar_ms = s;
    if (r == 0 || v < best_avx2_ms) best_avx2_ms = v;
  }
  out.rows_per_sec.scalar =
      1000.0 * static_cast<double>(out.rows_folded) / best_scalar_ms;
  out.rows_per_sec.avx2 =
      1000.0 * static_cast<double>(out.rows_folded) / best_avx2_ms;
  return out;
}

// ------------------------------- codec decode -------------------------------

struct CodecBench {
  Pair decode_gbps;
  double ratio = 0;  ///< encoded / raw payload bytes
};

CodecBench RunCodecBench() {
  // Representative sorted chunk payload (same shape bench_compression
  // uses): low-cardinality coordinates -> dict + delta columns, counts ->
  // delta, measures -> XOR doubles.
  std::mt19937 rng(7);
  AggColumns cols(4);
  const size_t rows = 200000;
  cols.Reserve(rows);
  std::array<uint32_t, storage::kMaxDims> c{};
  for (size_t i = 0; i < rows; ++i) {
    for (uint32_t d = 0; d < 4; ++d) c[d] = rng() % 40;
    const double sum = static_cast<double>(rng() % 1000000) / 16.0;
    cols.PushCell(c.data(), sum, 1 + rng() % 6, sum - 2, sum + 2);
  }
  cols.SortRowMajor();
  const double raw_gb =
      static_cast<double>(codec::RawPayloadBytes(cols)) / 1e9;

  std::vector<uint8_t> blob;
  codec::EncodeAggColumns(cols, &blob);

  CodecBench out;
  out.ratio = static_cast<double>(blob.size()) /
              static_cast<double>(codec::RawPayloadBytes(cols));
  const int reps = 7;
  auto decode_once = [&](simd::IsaLevel level) {
    simd::ScopedLevel pin(level);
    const double t0 = NowMs();
    auto back = codec::DecodeAggColumns(blob.data(), blob.size(),
                                        codec::DecodeMode::kFast);
    const double ms = NowMs() - t0;
    if (!back.ok() || back->size() != rows) std::abort();
    return ms;
  };
  // Levels alternate inside each rep (scalar, then AVX2) so slow
  // frequency drift cancels out of the ratio — timing one level's reps
  // in a block and then the other's lets a multi-second drift bias
  // whichever ran later.
  decode_once(simd::IsaLevel::kScalar);  // warmup
  decode_once(simd::IsaLevel::kAvx2);
  double best_scalar_ms = 0, best_avx2_ms = 0;
  for (int r = 0; r < reps; ++r) {
    const double s = decode_once(simd::IsaLevel::kScalar);
    const double v = decode_once(simd::IsaLevel::kAvx2);
    if (r == 0 || s < best_scalar_ms) best_scalar_ms = s;
    if (r == 0 || v < best_avx2_ms) best_avx2_ms = v;
  }
  out.decode_gbps.scalar = raw_gb / (best_scalar_ms / 1e3);
  out.decode_gbps.avx2 = raw_gb / (best_avx2_ms / 1e3);
  return out;
}

// ------------------------------ bitmap kernels ------------------------------

struct BitmapBench {
  Pair and_gbps;
  Pair or_gbps;
  Pair count_gbps;
};

BitmapBench RunBitmapBench() {
  const uint64_t bits = 4u << 20;  // 4 Mbit = 512 KiB per bitmap
  std::mt19937_64 rng(11);
  Bitmap a(bits), b(bits);
  for (uint64_t i = 0; i < bits; ++i) {
    if ((rng() & 3) == 0) a.Set(i);
    if ((rng() & 3) == 0) b.Set(i);
  }
  const double gb = static_cast<double>(bits / 8) / 1e9;
  const int reps = 200;

  uint64_t sink = 0;
  // Levels alternate in small timed groups so frequency drift cancels
  // out of the ratio (same scheme as the fold and codec benches).
  const int kGroup = 10;
  auto bench_op = [&](auto op) {
    auto group_ms = [&](simd::IsaLevel level) {
      simd::ScopedLevel pin(level);
      const double t0 = NowMs();
      for (int k = 0; k < kGroup; ++k) op();
      return NowMs() - t0;
    };
    group_ms(simd::IsaLevel::kScalar);  // warmup
    group_ms(simd::IsaLevel::kAvx2);
    double best_scalar_ms = 0, best_avx2_ms = 0;
    for (int r = 0; r < reps / kGroup; ++r) {
      const double s = group_ms(simd::IsaLevel::kScalar);
      const double v = group_ms(simd::IsaLevel::kAvx2);
      if (r == 0 || s < best_scalar_ms) best_scalar_ms = s;
      if (r == 0 || v < best_avx2_ms) best_avx2_ms = v;
    }
    Pair p;
    p.scalar = kGroup * gb / (best_scalar_ms / 1e3);
    p.avx2 = kGroup * gb / (best_avx2_ms / 1e3);
    return p;
  };

  BitmapBench out;
  Bitmap scratch = a;
  out.and_gbps = bench_op([&] {
    scratch = a;
    scratch.And(b);
    sink += scratch.num_bits();
  });
  out.or_gbps = bench_op([&] {
    scratch = a;
    scratch.Or(b);
    sink += scratch.num_bits();
  });
  out.count_gbps = bench_op([&] { sink += a.CountSet(); });
  if (sink == ~0ull) std::puts("sink");  // keep the ops alive
  return out;
}

// ------------------------- end-to-end session mix ---------------------------

struct StreamBench {
  Pair avg_ms;  ///< lower is better; speedup() reported as scalar/avx2
  uint64_t queries = 0;
  bool identical = false;
};

uint64_t HashRows(const std::vector<ResultRow>& rows, uint64_t acc) {
  auto mix = [&acc](uint64_t v) { acc = (acc ^ v) * 0x100000001b3ULL; };
  for (const ResultRow& r : rows) {
    for (uint32_t v : r.coords) mix(v);
    uint64_t bits;
    std::memcpy(&bits, &r.sum, 8);
    mix(bits);
    mix(r.count);
    std::memcpy(&bits, &r.min_v, 8);
    mix(bits);
    std::memcpy(&bits, &r.max_v, 8);
    mix(bits);
  }
  return acc;
}

Result<StreamBench> RunStreamBench(System* sys, uint64_t num_queries) {
  StreamBench out;
  out.queries = num_queries;
  uint64_t hash_scalar = 0, hash_avx2 = 0;
  auto run_level = [&](simd::IsaLevel level,
                       uint64_t* hash_out) -> Result<double> {
    simd::ScopedLevel pin(level);
    CHUNKCACHE_RETURN_IF_ERROR(sys->ResetBackend());
    ChunkManagerOptions opts;
    opts.cache_bytes = 8u << 20;
    opts.enable_compression = true;  // decode sits on the hit path
    ChunkCacheManager mgr(&sys->engine(), opts);
    workload::WorkloadOptions wopts;
    wopts.seed = 1998;  // same Table-1 session mix at both levels
    workload::QueryGenerator gen(&sys->schema(), wopts);
    uint64_t hash = 0xcbf29ce484222325ULL;
    const double t0 = NowMs();
    for (uint64_t i = 0; i < num_queries; ++i) {
      const StarJoinQuery q = gen.Next();
      QueryStats st;
      CHUNKCACHE_ASSIGN_OR_RETURN(std::vector<ResultRow> rows,
                                  mgr.Execute(q, &st));
      hash = HashRows(rows, hash);
    }
    const double ms = NowMs() - t0;
    *hash_out = hash;
    return ms / static_cast<double>(num_queries);
  };
  // Levels alternate across whole-stream passes (best-of-two each) so
  // frequency drift cancels out of the ratio, as in the kernel benches.
  for (int r = 0; r < 2; ++r) {
    CHUNKCACHE_ASSIGN_OR_RETURN(
        const double s, run_level(simd::IsaLevel::kScalar, &hash_scalar));
    CHUNKCACHE_ASSIGN_OR_RETURN(
        const double v, run_level(simd::IsaLevel::kAvx2, &hash_avx2));
    if (r == 0 || s < out.avg_ms.scalar) out.avg_ms.scalar = s;
    if (r == 0 || v < out.avg_ms.avx2) out.avg_ms.avx2 = v;
  }
  out.identical = hash_scalar == hash_avx2;
  return out;
}

// ----------------------------------- main -----------------------------------

Status Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  const bool avx2 = simd::DetectedLevel() == simd::IsaLevel::kAvx2;
  std::printf("=== SIMD dispatch: scalar vs AVX2 (detected=%s) ===\n",
              simd::IsaLevelName(simd::DetectedLevel()));
  if (!avx2) {
    std::printf("note: no AVX2 on this host; both columns run scalar\n");
  }

  CHUNKCACHE_ASSIGN_OR_RETURN(schema::StarSchema schema,
                              schema::BuildPaperSchema());
  schema::FactGenOptions gen;
  gen.num_tuples = config.num_tuples;
  gen.seed = config.data_seed;
  const std::vector<Tuple> tuples = schema::GenerateFactTuples(schema, gen);

  // Two kernel regimes, each on the chunk geometry where that regime
  // actually runs. "leaf" folds base rows at base granularity on the
  // DEFAULT chunking scheme (every leaf-level offset table is affine, so
  // the AVX2 kernel computes offsets with vector multiplies; cell boxes
  // are L1/L2 resident as in production). "rollup" groups every dimension
  // at an interior level on an rf=0.5 scheme whose larger boxes force the
  // VPGATHERDD path through multi-entry rollup tables. Both replicate the
  // surviving batches to >= 25k rows so the timed region is the kernel,
  // not per-chunk aggregator setup (see RunFoldBench).
  ChunkingOptions leaf_copts;  // default range_fraction
  CHUNKCACHE_ASSIGN_OR_RETURN(
      ChunkingScheme leaf_scheme,
      ChunkingScheme::Build(&schema, leaf_copts, tuples.size()));
  ChunkingOptions rollup_copts;
  rollup_copts.range_fraction = 0.5;
  CHUNKCACHE_ASSIGN_OR_RETURN(
      ChunkingScheme rollup_scheme,
      ChunkingScheme::Build(&schema, rollup_copts, tuples.size()));
  const int reps = tuples.size() > 100000 ? 3 : 10;
  const GroupBySpec fold_leaf_gb{{3, 2, 3, 2}, 4};
  const GroupBySpec fold_rollup_gb{{2, 1, 2, 1}, 4};
  const FoldBench fold = RunFoldBench(schema, leaf_scheme, tuples,
                                      fold_leaf_gb, reps, 25000, 8);
  const FoldBench rollup = RunFoldBench(schema, rollup_scheme, tuples,
                                        fold_rollup_gb, reps, 25000, 8);
  const bool fold_identical =
      fold.result_hash_scalar == fold.result_hash_avx2 &&
      rollup.result_hash_scalar == rollup.result_hash_avx2;
  std::printf("\ndense fold, leaf group-by (%llu rows):\n",
              (unsigned long long)fold.rows_folded);
  std::printf("  scalar %14.0f rows/s\n  avx2   %14.0f rows/s\n"
              "  speedup %12.2fx  identical=%s\n",
              fold.rows_per_sec.scalar, fold.rows_per_sec.avx2,
              fold.rows_per_sec.speedup(),
              fold.result_hash_scalar == fold.result_hash_avx2 ? "yes" : "NO");
  std::printf("dense fold, rollup group-by (%llu rows):\n",
              (unsigned long long)rollup.rows_folded);
  std::printf("  scalar %14.0f rows/s\n  avx2   %14.0f rows/s\n"
              "  speedup %12.2fx  identical=%s\n",
              rollup.rows_per_sec.scalar, rollup.rows_per_sec.avx2,
              rollup.rows_per_sec.speedup(),
              rollup.result_hash_scalar == rollup.result_hash_avx2 ? "yes"
                                                                   : "NO");

  const CodecBench cdc = RunCodecBench();
  std::printf("\ncodec decode (fast, ratio %.3f):\n"
              "  scalar %11.2f GB/s\n  avx2   %11.2f GB/s\n"
              "  speedup %11.2fx\n",
              cdc.ratio, cdc.decode_gbps.scalar, cdc.decode_gbps.avx2,
              cdc.decode_gbps.speedup());

  const BitmapBench bm = RunBitmapBench();
  std::printf("\nbitmap word kernels (GB/s, scalar / avx2 / speedup):\n");
  std::printf("  and   %8.2f %8.2f %6.2fx\n", bm.and_gbps.scalar,
              bm.and_gbps.avx2, bm.and_gbps.speedup());
  std::printf("  or    %8.2f %8.2f %6.2fx\n", bm.or_gbps.scalar,
              bm.or_gbps.avx2, bm.or_gbps.speedup());
  std::printf("  count %8.2f %8.2f %6.2fx\n", bm.count_gbps.scalar,
              bm.count_gbps.avx2, bm.count_gbps.speedup());

  ExperimentConfig e2e_config = config;
  e2e_config.pool_frames = 512;  // backend scans must really decode pages
  CHUNKCACHE_ASSIGN_OR_RETURN(std::unique_ptr<System> sys,
                              System::Build(e2e_config));
  const uint64_t num_queries = config.stream_queries;
  CHUNKCACHE_ASSIGN_OR_RETURN(StreamBench stream,
                              RunStreamBench(sys.get(), num_queries));
  std::printf("\nend-to-end session mix, compression on (%llu queries):\n"
              "  scalar %9.3f ms/query\n  avx2   %9.3f ms/query\n"
              "  speedup %8.2fx  identical=%s\n",
              (unsigned long long)stream.queries, stream.avg_ms.scalar,
              stream.avg_ms.avx2,
              stream.avg_ms.avx2 > 0
                  ? stream.avg_ms.scalar / stream.avg_ms.avx2
                  : 0,
              stream.identical ? "yes" : "NO");

  std::FILE* out = std::fopen("BENCH_simd.json", "w");
  if (out == nullptr) return Status::IoError("cannot write BENCH_simd.json");
  std::fprintf(out,
               "{\n  \"bench\": \"simd\",\n  \"avx2_available\": %s,\n"
               "  \"num_tuples\": %llu,\n",
               avx2 ? "true" : "false",
               static_cast<unsigned long long>(tuples.size()));
  std::fprintf(out,
               "  \"dense_fold\": {\"rows_folded\": %llu, "
               "\"scalar_rows_per_sec\": %.0f, \"avx2_rows_per_sec\": %.0f, "
               "\"speedup\": %.3f, \"identical\": %s},\n",
               static_cast<unsigned long long>(fold.rows_folded),
               fold.rows_per_sec.scalar, fold.rows_per_sec.avx2,
               fold.rows_per_sec.speedup(), fold_identical ? "true" : "false");
  std::fprintf(out,
               "  \"dense_fold_rollup\": {\"rows_folded\": %llu, "
               "\"scalar_rows_per_sec\": %.0f, \"avx2_rows_per_sec\": %.0f, "
               "\"speedup\": %.3f, \"identical\": %s},\n",
               static_cast<unsigned long long>(rollup.rows_folded),
               rollup.rows_per_sec.scalar, rollup.rows_per_sec.avx2,
               rollup.rows_per_sec.speedup(),
               rollup.result_hash_scalar == rollup.result_hash_avx2
                   ? "true"
                   : "false");
  std::fprintf(out,
               "  \"codec_decode\": {\"scalar_gbps\": %.3f, "
               "\"avx2_gbps\": %.3f, \"speedup\": %.3f, \"ratio\": %.3f},\n",
               cdc.decode_gbps.scalar, cdc.decode_gbps.avx2,
               cdc.decode_gbps.speedup(), cdc.ratio);
  std::fprintf(out, "  \"bitmap\": [\n");
  const struct {
    const char* op;
    const Pair* p;
  } ops[] = {{"and", &bm.and_gbps}, {"or", &bm.or_gbps},
             {"count_set", &bm.count_gbps}};
  for (size_t i = 0; i < 3; ++i) {
    std::fprintf(out,
                 "    {\"op\": \"%s\", \"scalar_gbps\": %.3f, "
                 "\"avx2_gbps\": %.3f, \"speedup\": %.3f}%s\n",
                 ops[i].op, ops[i].p->scalar, ops[i].p->avx2,
                 ops[i].p->speedup(), i + 1 < 3 ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"end_to_end\": {\"queries\": %llu, "
               "\"scalar_avg_ms\": %.4f, \"avx2_avg_ms\": %.4f, "
               "\"speedup\": %.3f, \"identical\": %s}\n}\n",
               static_cast<unsigned long long>(stream.queries),
               stream.avg_ms.scalar, stream.avg_ms.avx2,
               stream.avg_ms.avx2 > 0
                   ? stream.avg_ms.scalar / stream.avg_ms.avx2
                   : 0,
               stream.identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote BENCH_simd.json\n");

  if (!fold_identical || !stream.identical) {
    return Status::Internal("scalar and AVX2 results diverged");
  }
  return Status::OK();
}

}  // namespace
}  // namespace chunkcache::bench

int main() {
  const chunkcache::Status s = chunkcache::bench::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench_simd failed: %s\n", s.message().c_str());
    return 1;
  }
  return 0;
}
