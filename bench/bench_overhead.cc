// Quantifies the paper's uniformity argument (Sections 2.4 / 3.2 benefit
// 2): answering from a chunk cache costs one O(1) hash probe per needed
// chunk, while a semantic-region cache must intersect the query with the
// cached regions of its group-by — work that grows with cache population.
// This bench populates both caches with increasing numbers of entries for
// ONE group-by (the adversarial case for the semantic cache) and measures
// wall time per probe.

#include <chrono>
#include <cstdio>
#include <memory>

#include "cache/chunk_cache.h"
#include "cache/semantic_cache.h"
#include "chunks/group_by_spec.h"
#include "common/random.h"

namespace chunkcache::bench {
namespace {

using backend::StarJoinQuery;
using cache::SemanticRegion;
using chunks::GroupBySpec;
using schema::OrdinalRange;

int Run() {
  std::printf("=== Probe overhead: chunk hash lookup vs semantic region "
              "intersection ===\n");
  std::printf("%-10s %22s %26s %20s\n", "entries", "chunk probe (ns)",
              "semantic probe (ns)", "intersect tests/probe");

  const GroupBySpec spec{{2, 1, 2, 1}, 4};
  Random rng(5);
  for (uint64_t n : {256u, 1024u, 4096u, 16384u, 65536u}) {
    // Chunk cache with n chunks of this group-by.
    cache::ChunkCache chunk_cache(1ull << 30, cache::MakePolicy("lru"));
    for (uint64_t i = 0; i < n; ++i) {
      cache::CachedChunk c;
      c.group_by_id = 7;
      c.chunk_num = i;
      c.benefit = 1.0;
      c.cols = storage::AggColumns(4);
      for (uint32_t row = 0; row < 4; ++row) {
        const uint32_t coords[4] = {row, 0, 0, 0};
        c.cols.PushCell(coords, 0.0, 1, 0.0, 0.0);
      }
      chunk_cache.Insert(std::move(c));
    }
    // Semantic cache with n small disjoint regions of the same group-by.
    cache::SemanticRegionCache sem_cache(1ull << 30,
                                         cache::MakePolicy("lru"));
    for (uint64_t i = 0; i < n; ++i) {
      SemanticRegion r;
      r.group_by = spec;
      r.box.num_dims = 4;
      r.box.ranges[0] = OrdinalRange{static_cast<uint32_t>(i % 1000) * 4,
                                     static_cast<uint32_t>(i % 1000) * 4 + 3};
      r.box.ranges[1] = OrdinalRange{static_cast<uint32_t>(i / 1000) * 4,
                                     static_cast<uint32_t>(i / 1000) * 4 + 3};
      r.box.ranges[2] = OrdinalRange{0, 24};
      r.box.ranges[3] = OrdinalRange{0, 9};
      r.benefit = 1.0;
      r.rows.resize(4);
      sem_cache.Insert(std::move(r));
    }

    const int probes = 2000;
    // Chunk probes: look up `chunks_per_query` chunk numbers.
    const int chunks_per_query = 32;
    auto t0 = std::chrono::steady_clock::now();
    uint64_t sink = 0;
    for (int p = 0; p < probes; ++p) {
      for (int c = 0; c < chunks_per_query; ++c) {
        sink += chunk_cache.Lookup(7, rng.Uniform(2 * n), 0) != nullptr;
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    // Semantic probes: decompose a query box against the regions.
    const uint64_t tests_before = sem_cache.stats().intersection_tests;
    StarJoinQuery q;
    q.group_by = spec;
    for (int p = 0; p < probes; ++p) {
      const uint32_t x = static_cast<uint32_t>(rng.Uniform(3900));
      q.selection[0] = OrdinalRange{x, x + 60};
      q.selection[1] = OrdinalRange{0, 24};
      q.selection[2] = OrdinalRange{0, 24};
      q.selection[3] = OrdinalRange{0, 9};
      sink += sem_cache.Decompose(q).covered.size();
    }
    auto t2 = std::chrono::steady_clock::now();
    const double chunk_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / probes;
    const double sem_ns =
        std::chrono::duration<double, std::nano>(t2 - t1).count() / probes;
    const double tests_per_probe =
        static_cast<double>(sem_cache.stats().intersection_tests -
                            tests_before) /
        probes;
    std::printf("%-10llu %22.0f %26.0f %20.1f\n",
                static_cast<unsigned long long>(n), chunk_ns, sem_ns,
                tests_per_probe);
    if (sink == 0xdeadbeef) std::printf("");  // keep the work alive
  }
  std::printf("(chunk probe = %d O(1) hash lookups; semantic probe scans "
              "all same-group-by regions)\n", 32);
  return 0;
}

}  // namespace
}  // namespace chunkcache::bench

int main() { return chunkcache::bench::Run(); }
