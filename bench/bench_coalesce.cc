// Measures cross-query miss coalescing under duplicate-miss storms.
//
// Two storm shapes, each run as a series of cold-cache waves in which 16
// client threads fire concurrently at one ChunkCacheManager:
//   1. identical    — every thread runs the same query, the worst case for
//                     duplicated backend work;
//   2. overlapping  — threads run one of three variants of a base query
//                     (full range plus its two halves), so chunk sets
//                     partially overlap.
// Both shapes run with miss coalescing on and off (the ablation flag);
// everything else — engine, buffer pool, worker pool size — is identical.
// Reports throughput, the speedup of on over off, and the coalescing
// counters (waits, shared-scan batches, backend chunk computations).
//
// Results go to stdout as a table AND to BENCH_coalesce.json (machine
// readable; CI validates its schema). Honors CHUNKCACHE_BENCH_SCALE via
// ExperimentConfig::FromEnv like the other benches.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/star_join_query.h"
#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"
#include "workload/query_generator.h"

namespace chunkcache::bench {
namespace {

using backend::StarJoinQuery;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;

constexpr int kThreads = 16;
constexpr int kWaves = 6;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic base queries, one per wave: generated queries needing at
/// least four chunks (storms over a single chunk would only measure the
/// cache's own hit path).
std::vector<StarJoinQuery> PickWaveQueries(System* sys) {
  workload::WorkloadOptions wopts;
  wopts.seed = 31;
  workload::QueryGenerator gen(&sys->schema(), wopts);
  std::vector<StarJoinQuery> picked;
  for (int i = 0; i < 4096 && picked.size() < kWaves; ++i) {
    StarJoinQuery q = gen.Next();
    const auto box = sys->scheme().BoxForSelection(q.group_by, q.selection);
    if (box.NumChunks() >= 4) picked.push_back(std::move(q));
  }
  return picked;
}

/// The per-thread query for a wave: the base query in identical mode; in
/// overlapping mode threads alternate between the full range and its two
/// halves on the first splittable dimension.
StarJoinQuery VariantFor(const StarJoinQuery& base, bool overlapping,
                         int thread_idx) {
  if (!overlapping) return base;
  for (uint32_t d = 0; d < base.group_by.num_dims; ++d) {
    const auto& r = base.selection[d];
    if (r.end > r.begin) {
      const uint32_t mid = r.begin + (r.end - r.begin) / 2;
      StarJoinQuery q = base;
      switch (thread_idx % 3) {
        case 0:
          break;  // full range
        case 1:
          q.selection[d].end = mid;
          break;
        case 2:
          q.selection[d].begin = mid;
          break;
      }
      return q;
    }
  }
  return base;
}

struct StormResult {
  double qps = 0;
  uint64_t errors = 0;
  uint64_t backend_chunks = 0;  ///< chunk computations (kernel tally delta)
  uint64_t coalesced_waits = 0;
  uint64_t dedup_saved = 0;
  uint64_t shared_scan_batches = 0;
  uint64_t shared_scan_requests = 0;
  uint64_t queue_depth_hwm = 0;
  uint64_t inflight_peak = 0;
};

/// Runs kWaves cold-cache waves of kThreads concurrent queries against a
/// fresh manager and returns throughput plus the coalescing counters.
StormResult RunStorm(System* sys, const std::vector<StarJoinQuery>& waves,
                     bool overlapping, bool coalescing_on) {
  ChunkManagerOptions opts;
  opts.num_workers = 8;
  opts.cache_shards = 16;
  opts.enable_miss_coalescing = coalescing_on;
  ChunkCacheManager mgr(&sys->engine(), opts);
  sys->engine().ResetKernelStats();

  StormResult res;
  std::atomic<uint64_t> errors{0};
  double busy_ms = 0;
  for (const StarJoinQuery& base : waves) {
    mgr.chunk_cache().Clear();  // every wave starts with a cold chunk cache
    const double t0 = NowMs();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const StarJoinQuery q = VariantFor(base, overlapping, t);
        QueryStats st;
        if (!mgr.Execute(q, &st).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : threads) th.join();
    busy_ms += NowMs() - t0;
  }
  res.errors = errors.load();
  res.qps = busy_ms > 0
                ? 1000.0 * static_cast<double>(kWaves) * kThreads / busy_ms
                : 0;
  const backend::AggKernelStats ks = sys->engine().kernel_stats();
  res.backend_chunks = ks.dense_kernels + ks.hash_kernels;
  const cache::ChunkCacheStats cs = mgr.StatsSnapshot();
  res.coalesced_waits = cs.coalesced_waits;
  res.dedup_saved = cs.dedup_saved_chunks;
  res.shared_scan_batches = cs.shared_scan_batches;
  res.shared_scan_requests = cs.shared_scan_requests;
  res.queue_depth_hwm = cs.scan_queue_depth_hwm;
  res.inflight_peak = cs.inflight_peak;
  return res;
}

void PrintShape(const char* name, const StormResult& on,
                const StormResult& off) {
  const double speedup = off.qps > 0 ? on.qps / off.qps : 0;
  std::printf("%-12s %10.0f %10.0f %8.2fx %10llu %10llu %8llu %8llu\n", name,
              on.qps, off.qps, speedup,
              static_cast<unsigned long long>(on.backend_chunks),
              static_cast<unsigned long long>(off.backend_chunks),
              static_cast<unsigned long long>(on.coalesced_waits),
              static_cast<unsigned long long>(on.shared_scan_batches));
}

void JsonShape(std::FILE* out, const char* name, const StormResult& on,
               const StormResult& off, bool last) {
  const double speedup = off.qps > 0 ? on.qps / off.qps : 0;
  std::fprintf(
      out,
      "  \"%s\": {\"on_qps\": %.1f, \"off_qps\": %.1f, \"speedup\": %.3f, "
      "\"on_backend_chunks\": %llu, \"off_backend_chunks\": %llu, "
      "\"coalesced_waits\": %llu, \"dedup_saved_chunks\": %llu, "
      "\"shared_scan_batches\": %llu, \"shared_scan_requests\": %llu, "
      "\"queue_depth_hwm\": %llu, \"inflight_peak\": %llu, "
      "\"errors\": %llu}%s\n",
      name, on.qps, off.qps, speedup,
      static_cast<unsigned long long>(on.backend_chunks),
      static_cast<unsigned long long>(off.backend_chunks),
      static_cast<unsigned long long>(on.coalesced_waits),
      static_cast<unsigned long long>(on.dedup_saved),
      static_cast<unsigned long long>(on.shared_scan_batches),
      static_cast<unsigned long long>(on.shared_scan_requests),
      static_cast<unsigned long long>(on.queue_depth_hwm),
      static_cast<unsigned long long>(on.inflight_peak),
      static_cast<unsigned long long>(on.errors + off.errors),
      last ? "" : ",");
}

Status Run() {
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  PrintSetup(config,
             "Miss coalescing: 16-thread duplicate-miss storms, on vs off");
  CHUNKCACHE_ASSIGN_OR_RETURN(std::unique_ptr<System> sys,
                              System::Build(config));
  const std::vector<StarJoinQuery> waves = PickWaveQueries(sys.get());
  if (waves.size() < kWaves) {
    return Status::Internal("not enough multi-chunk queries generated");
  }

  // One warmup wave populates the buffer pool so both configurations read
  // from the same warm backend (the chunk cache itself stays cold).
  RunStorm(sys.get(), {waves[0]}, /*overlapping=*/false,
           /*coalescing_on=*/true);

  std::printf("%-12s %10s %10s %9s %10s %10s %8s %8s\n", "storm", "on q/s",
              "off q/s", "speedup", "on chunks", "off chunk", "waits",
              "batches");
  const StormResult ident_on =
      RunStorm(sys.get(), waves, /*overlapping=*/false, /*coalescing_on=*/true);
  const StormResult ident_off = RunStorm(sys.get(), waves,
                                         /*overlapping=*/false,
                                         /*coalescing_on=*/false);
  PrintShape("identical", ident_on, ident_off);
  const StormResult over_on =
      RunStorm(sys.get(), waves, /*overlapping=*/true, /*coalescing_on=*/true);
  const StormResult over_off =
      RunStorm(sys.get(), waves, /*overlapping=*/true, /*coalescing_on=*/false);
  PrintShape("overlapping", over_on, over_off);

  std::FILE* out = std::fopen("BENCH_coalesce.json", "w");
  if (out == nullptr) {
    return Status::IoError("cannot write BENCH_coalesce.json");
  }
  std::fprintf(out,
               "{\n  \"bench\": \"coalesce\",\n  \"num_tuples\": %llu,\n"
               "  \"threads\": %d,\n  \"waves\": %d,\n",
               static_cast<unsigned long long>(config.num_tuples), kThreads,
               kWaves);
  JsonShape(out, "identical", ident_on, ident_off, /*last=*/false);
  JsonShape(out, "overlapping", over_on, over_off, /*last=*/true);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_coalesce.json\n");

  const double speedup =
      ident_off.qps > 0 ? ident_on.qps / ident_off.qps : 0;
  std::printf("identical-storm speedup: %.2fx (target >= 2x at full scale)\n",
              speedup);
  return Status::OK();
}

}  // namespace
}  // namespace chunkcache::bench

int main() {
  const chunkcache::Status s = chunkcache::bench::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench_coalesce failed: %s\n", s.message().c_str());
    return 1;
  }
  return 0;
}
