// Chunk-payload compression: what does the cache buy at a fixed byte
// budget, and what does decoding cost?
//
// Three experiments:
//   1. codec microbench — encode / decode throughput (GB/s of raw payload)
//      and the compression ratio on a representative sorted chunk payload,
//      fast and reference decoders separately;
//   2. cache-size sweep — the same deterministic query stream through two
//      managers that differ only in enable_compression, at several cache
//      budgets: hit ratio, average per-query latency, backend pages read,
//      and a result hash that must be identical on == off (the ablation);
//   3. CPU/IO crossover — from each sweep point, the modeled page cost
//      above which the I/O saved by the extra hits outweighs the decode
//      CPU spent on them (compression wins whenever the deployment's page
//      cost exceeds the crossover).
//
// Results go to stdout as tables AND to BENCH_compression.json (machine
// readable; CI validates its schema). Honors CHUNKCACHE_BENCH_SCALE.

#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "backend/star_join_query.h"
#include "bench/common/experiment.h"
#include "core/chunk_cache_manager.h"
#include "storage/codec.h"
#include "workload/query_generator.h"

namespace chunkcache::bench {
namespace {

using backend::ResultRow;
using backend::StarJoinQuery;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;
using storage::AggColumns;

namespace codec = storage::codec;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ----------------------------- codec microbench -----------------------------

struct CodecBench {
  double encode_gbps = 0;
  double decode_fast_gbps = 0;
  double decode_ref_gbps = 0;
  double ratio = 0;  ///< encoded / raw, lower is better
};

CodecBench RunCodecBench() {
  // Representative chunk payload: sorted row-major coordinates over a few
  // dozen distinct values per dimension, clustered measures.
  std::mt19937 rng(7);
  AggColumns cols(4);
  const size_t rows = 200000;
  cols.Reserve(rows);
  std::array<uint32_t, storage::kMaxDims> c{};
  for (size_t i = 0; i < rows; ++i) {
    for (uint32_t d = 0; d < 4; ++d) c[d] = rng() % 40;
    const double sum = static_cast<double>(rng() % 1000000) / 16.0;
    cols.PushCell(c.data(), sum, 1 + rng() % 6, sum - 2, sum + 2);
  }
  cols.SortRowMajor();
  const double raw_gb =
      static_cast<double>(codec::RawPayloadBytes(cols)) / 1e9;

  CodecBench out;
  std::vector<uint8_t> blob;
  const int reps = 5;
  double t0 = NowMs();
  for (int r = 0; r < reps; ++r) {
    blob.clear();
    codec::EncodeAggColumns(cols, &blob);
  }
  out.encode_gbps = reps * raw_gb / ((NowMs() - t0) / 1e3);
  out.ratio = static_cast<double>(blob.size()) /
              static_cast<double>(codec::RawPayloadBytes(cols));

  t0 = NowMs();
  for (int r = 0; r < reps; ++r) {
    auto back = codec::DecodeAggColumns(blob.data(), blob.size(),
                                        codec::DecodeMode::kFast);
    if (!back.ok() || back->size() != rows) std::abort();
  }
  out.decode_fast_gbps = reps * raw_gb / ((NowMs() - t0) / 1e3);

  t0 = NowMs();
  for (int r = 0; r < reps; ++r) {
    auto back = codec::DecodeAggColumns(blob.data(), blob.size(),
                                        codec::DecodeMode::kReference);
    if (!back.ok() || back->size() != rows) std::abort();
  }
  out.decode_ref_gbps = reps * raw_gb / ((NowMs() - t0) / 1e3);
  return out;
}

// ------------------------------ cache-size sweep ----------------------------

struct SweepPoint {
  double cache_mb = 0;
  double on_hit_ratio = 0;
  double off_hit_ratio = 0;
  double on_avg_ms = 0;   ///< Real per-query wall time.
  double off_avg_ms = 0;
  uint64_t on_pages = 0;  ///< Backend pages read over the stream.
  uint64_t off_pages = 0;
  uint64_t compressed_chunks = 0;
  uint64_t decode_calls = 0;
  uint64_t decoded_lru_hits = 0;
  double crossover_page_ms = 0;  ///< Page cost where on == off total time.
  bool identical = false;        ///< Result hash on == hash off.
};

uint64_t HashRows(const std::vector<ResultRow>& rows, uint64_t acc) {
  auto mix = [&acc](uint64_t v) {
    acc = (acc ^ v) * 0x100000001b3ULL;
  };
  for (const ResultRow& r : rows) {
    for (uint32_t v : r.coords) mix(v);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(r.sum), "");
    std::memcpy(&bits, &r.sum, 8);
    mix(bits);
    mix(r.count);
    std::memcpy(&bits, &r.min_v, 8);
    mix(bits);
    std::memcpy(&bits, &r.max_v, 8);
    mix(bits);
  }
  return acc;
}

struct StreamOutcome {
  double hit_ratio = 0;
  double avg_ms = 0;
  double cpu_ms = 0;  ///< Total wall across the stream (in-memory backend).
  uint64_t pages = 0;
  uint64_t hash = 0xcbf29ce484222325ULL;
  cache::ChunkCacheStats stats;
};

Result<StreamOutcome> RunCompressionStream(System* sys, uint64_t cache_bytes,
                                           bool compression_on,
                                           uint64_t num_queries) {
  // Cold backend per configuration: neither run inherits the other's warm
  // buffer pool, so pages_read reflects each tier's own misses.
  CHUNKCACHE_RETURN_IF_ERROR(sys->ResetBackend());
  ChunkManagerOptions opts;
  opts.cache_bytes = cache_bytes;
  opts.enable_compression = compression_on;
  ChunkCacheManager mgr(&sys->engine(), opts);
  workload::WorkloadOptions wopts;
  wopts.seed = 1998;  // same stream for both configurations
  workload::QueryGenerator gen(&sys->schema(), wopts);

  StreamOutcome out;
  uint64_t pages = 0;
  const double t0 = NowMs();
  for (uint64_t i = 0; i < num_queries; ++i) {
    const StarJoinQuery q = gen.Next();
    QueryStats st;
    CHUNKCACHE_ASSIGN_OR_RETURN(std::vector<ResultRow> rows,
                                mgr.Execute(q, &st));
    out.hash = HashRows(rows, out.hash);
    pages += st.backend_work.pages_read;
  }
  out.cpu_ms = NowMs() - t0;
  out.avg_ms = out.cpu_ms / static_cast<double>(num_queries);
  out.pages = pages;
  out.stats = mgr.StatsSnapshot();
  out.hit_ratio = out.stats.lookups > 0
                      ? static_cast<double>(out.stats.hits) /
                            static_cast<double>(out.stats.lookups)
                      : 0;
  return out;
}

Status Run() {
  ExperimentConfig config = ExperimentConfig::FromEnv();
  // Undersized buffer pool: the fact file must not fit, so backend scans
  // really read pages and the sweep's I/O column measures something.
  config.pool_frames = 256;
  PrintSetup(config,
             "Chunk compression: hit ratio at fixed cache bytes, on vs off");
  CHUNKCACHE_ASSIGN_OR_RETURN(std::unique_ptr<System> sys,
                              System::Build(config));

  const CodecBench cb = RunCodecBench();
  std::printf(
      "codec: encode %.2f GB/s, decode %.2f GB/s (fast) / %.2f GB/s "
      "(reference), ratio %.3f\n\n",
      cb.encode_gbps, cb.decode_fast_gbps, cb.decode_ref_gbps, cb.ratio);

  const uint64_t num_queries =
      std::max<uint64_t>(50, config.stream_queries / 5);
  const double scale =
      static_cast<double>(config.num_tuples) / 500000.0;
  std::vector<uint64_t> budgets;
  for (double mb : {0.125, 0.25, 0.5, 1.0}) {
    budgets.push_back(static_cast<uint64_t>(mb * scale * (1 << 20)));
  }

  std::printf("%8s %9s %9s %9s %9s %10s %10s %11s %6s\n", "cache", "on hit%",
              "off hit%", "on ms/q", "off ms/q", "on pages", "off pages",
              "xover ms/p", "ident");
  std::vector<SweepPoint> sweep;
  bool all_identical = true;
  for (uint64_t bytes : budgets) {
    CHUNKCACHE_ASSIGN_OR_RETURN(
        StreamOutcome on,
        RunCompressionStream(sys.get(), bytes, true, num_queries));
    CHUNKCACHE_ASSIGN_OR_RETURN(
        StreamOutcome off,
        RunCompressionStream(sys.get(), bytes, false, num_queries));
    SweepPoint p;
    p.cache_mb = static_cast<double>(bytes) / (1 << 20);
    p.on_hit_ratio = on.hit_ratio;
    p.off_hit_ratio = off.hit_ratio;
    p.on_avg_ms = on.avg_ms;
    p.off_avg_ms = off.avg_ms;
    p.on_pages = on.pages;
    p.off_pages = off.pages;
    p.compressed_chunks = on.stats.compressed_chunks;
    p.decode_calls = on.stats.decode_calls;
    p.decoded_lru_hits = on.stats.decoded_lru_hits;
    p.identical = on.hash == off.hash;
    all_identical = all_identical && p.identical;
    // CPU/IO crossover: compression spends (cpu_on - cpu_off) ms of CPU to
    // save (off_pages - on_pages) page reads. At any modeled page cost
    // above the ratio, compression wins outright; the in-memory backend
    // here has page cost ~0, so this is the honest break-even statement.
    const double extra_cpu = on.cpu_ms - off.cpu_ms;
    const int64_t saved_pages = static_cast<int64_t>(off.pages) -
                                static_cast<int64_t>(on.pages);
    p.crossover_page_ms =
        saved_pages > 0 ? std::max(0.0, extra_cpu) /
                              static_cast<double>(saved_pages)
                        : -1;  // no pages saved: compression never pays here
    sweep.push_back(p);
    std::printf("%6.2fM %8.1f%% %8.1f%% %9.3f %9.3f %10llu %10llu %11.4f "
                "%6s\n",
                p.cache_mb, 100 * p.on_hit_ratio, 100 * p.off_hit_ratio,
                p.on_avg_ms, p.off_avg_ms,
                static_cast<unsigned long long>(p.on_pages),
                static_cast<unsigned long long>(p.off_pages),
                p.crossover_page_ms,
                p.identical ? "yes" : "NO");
  }

  std::FILE* out = std::fopen("BENCH_compression.json", "w");
  if (out == nullptr) {
    return Status::IoError("cannot write BENCH_compression.json");
  }
  std::fprintf(out,
               "{\n  \"bench\": \"compression\",\n  \"num_tuples\": %llu,\n"
               "  \"queries_per_point\": %llu,\n"
               "  \"codec\": {\"encode_gbps\": %.3f, \"decode_fast_gbps\": "
               "%.3f, \"decode_ref_gbps\": %.3f, \"ratio\": %.4f},\n"
               "  \"sweep\": [\n",
               static_cast<unsigned long long>(config.num_tuples),
               static_cast<unsigned long long>(num_queries), cb.encode_gbps,
               cb.decode_fast_gbps, cb.decode_ref_gbps, cb.ratio);
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(
        out,
        "    {\"cache_mb\": %.2f, \"on_hit_ratio\": %.4f, "
        "\"off_hit_ratio\": %.4f, \"on_avg_ms\": %.4f, \"off_avg_ms\": "
        "%.4f, \"on_pages\": %llu, \"off_pages\": %llu, "
        "\"compressed_chunks\": %llu, \"decode_calls\": %llu, "
        "\"decoded_lru_hits\": %llu, \"crossover_page_ms\": %.5f, "
        "\"identical\": %s}%s\n",
        p.cache_mb, p.on_hit_ratio, p.off_hit_ratio, p.on_avg_ms,
        p.off_avg_ms, static_cast<unsigned long long>(p.on_pages),
        static_cast<unsigned long long>(p.off_pages),
        static_cast<unsigned long long>(p.compressed_chunks),
        static_cast<unsigned long long>(p.decode_calls),
        static_cast<unsigned long long>(p.decoded_lru_hits),
        p.crossover_page_ms, p.identical ? "true" : "false",
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"identical_all\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote BENCH_compression.json\n");

  if (!all_identical) {
    return Status::Internal("compression on/off results diverged");
  }
  return Status::OK();
}

}  // namespace
}  // namespace chunkcache::bench

int main() {
  const chunkcache::Status s = chunkcache::bench::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench_compression failed: %s\n",
                 s.message().c_str());
    return 1;
  }
  return 0;
}
