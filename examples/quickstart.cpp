// Quickstart: build the paper's star schema, load synthetic sales facts
// into a chunked file, attach the chunk-caching middle tier, and run SQL
// star-join queries against it — watching the second, overlapping query
// get answered mostly from the cache.
//
//   $ ./quickstart

#include <cstdio>
#include <memory>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "core/chunk_cache_manager.h"
#include "schema/synthetic.h"
#include "sql/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace chunkcache;

int main() {
  // --- 1. Schema: four dimensions with hierarchies (paper Table 1). -------
  auto schema_or = schema::BuildPaperSchema();
  if (!schema_or.ok()) return 1;
  auto schema = std::make_unique<schema::StarSchema>(
      std::move(schema_or).value());

  // --- 2. Chunking scheme: hierarchy-aligned chunk ranges. ----------------
  chunks::ChunkingOptions copts;
  copts.range_fraction = 0.1;
  auto scheme_or = chunks::ChunkingScheme::Build(schema.get(), copts,
                                                 /*num_base_tuples=*/100000);
  if (!scheme_or.ok()) return 1;
  auto scheme = std::make_unique<chunks::ChunkingScheme>(
      std::move(scheme_or).value());

  // --- 3. Backend: chunked fact file + bitmap indexes. --------------------
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 2048);  // 8 MiB
  schema::FactGenOptions gen;
  gen.num_tuples = 100000;
  auto file_or = backend::ChunkedFile::BulkLoad(
      &pool, scheme.get(), schema::GenerateFactTuples(*schema, gen));
  if (!file_or.ok()) return 1;
  auto file = std::make_unique<backend::ChunkedFile>(
      std::move(file_or).value());
  backend::BackendEngine engine(&pool, file.get(), scheme.get());
  if (!engine.BuildBitmapIndexes().ok()) return 1;
  std::printf("loaded %llu tuples into %llu non-empty chunks\n",
              (unsigned long long)file->num_tuples(),
              (unsigned long long)file->num_nonempty_chunks());

  // --- 4. Middle tier: the chunk cache. ------------------------------------
  core::ChunkManagerOptions mopts;
  mopts.cache_bytes = 8ull << 20;
  core::ChunkCacheManager tier(&engine, mopts);
  sql::SqlParser parser(schema.get());

  auto run = [&](const char* description, const char* text) {
    auto query = parser.Parse(text);
    if (!query.ok()) {
      std::printf("parse error: %s\n", query.status().ToString().c_str());
      return;
    }
    core::QueryStats stats;
    auto rows = tier.Execute(*query, &stats);
    if (!rows.ok()) {
      std::printf("exec error: %s\n", rows.status().ToString().c_str());
      return;
    }
    std::printf("\n%s\n  %s\n", description, text);
    std::printf("  -> %zu rows; chunks: %llu needed, %llu from cache, "
                "%llu computed; backend read %llu pages / %llu tuples\n",
                rows->size(), (unsigned long long)stats.chunks_needed,
                (unsigned long long)stats.chunks_from_cache,
                (unsigned long long)stats.chunks_from_backend,
                (unsigned long long)stats.backend_work.pages_read,
                (unsigned long long)stats.backend_work.tuples_processed);
    for (size_t i = 0; i < std::min<size_t>(3, rows->size()); ++i) {
      const auto& r = (*rows)[i];
      std::printf("     (%u,%u,%u,%u) sum=%.1f count=%llu\n", r.coords[0],
                  r.coords[1], r.coords[2], r.coords[3], r.sum,
                  (unsigned long long)r.count);
    }
  };

  run("Q1: mid-level slice (cold cache):",
      "SELECT D0.L2, D3.L2, SUM(dollar_sales) FROM Sales, D0, D3 "
      "WHERE D0.L2 BETWEEN 'D0.2.5' AND 'D0.2.25' "
      "AND D3.L2 BETWEEN 'D3.2.0' AND 'D3.2.24' "
      "GROUP BY D0.L2, D3.L2");

  run("Q2: overlapping slice (partially served from cache):",
      "SELECT D0.L2, D3.L2, SUM(dollar_sales) FROM Sales, D0, D3 "
      "WHERE D0.L2 BETWEEN 'D0.2.15' AND 'D0.2.35' "
      "AND D3.L2 BETWEEN 'D3.2.10' AND 'D3.2.34' "
      "GROUP BY D0.L2, D3.L2");

  run("Q3: exact repeat of Q2 (full cache hit):",
      "SELECT D0.L2, D3.L2, SUM(dollar_sales) FROM Sales, D0, D3 "
      "WHERE D0.L2 BETWEEN 'D0.2.15' AND 'D0.2.35' "
      "AND D3.L2 BETWEEN 'D3.2.10' AND 'D3.2.34' "
      "GROUP BY D0.L2, D3.L2");

  const auto& cs = tier.chunk_cache().stats();
  std::printf("\ncache: %zu chunks, %llu/%llu bytes, %llu hits / %llu "
              "lookups\n",
              tier.chunk_cache().num_chunks(),
              (unsigned long long)tier.chunk_cache().bytes_used(),
              (unsigned long long)tier.chunk_cache().capacity_bytes(),
              (unsigned long long)cs.hits, (unsigned long long)cs.lookups);
  return 0;
}
