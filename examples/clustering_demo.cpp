// Clustering demo: shows the chunked file organization's side benefit
// (paper Section 4.2 / Figure 7) — multidimensional clustering lets a
// bitmap-selected row set land on far fewer pages than in a randomly
// ordered file. Prints the page footprint of the same selection on both
// organizations and the chunk runs behind it.
//
//   $ ./clustering_demo

#include <cstdio>
#include <memory>
#include <set>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "index/bitmap_index.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace chunkcache;

int main() {
  auto schema_or = schema::BuildPaperSchema();
  if (!schema_or.ok()) return 1;
  auto schema = std::make_unique<schema::StarSchema>(
      std::move(schema_or).value());
  chunks::ChunkingOptions copts;
  copts.range_fraction = 0.2;
  auto scheme_or = chunks::ChunkingScheme::Build(schema.get(), copts, 100000);
  if (!scheme_or.ok()) return 1;
  auto scheme = std::make_unique<chunks::ChunkingScheme>(
      std::move(scheme_or).value());

  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 8192);
  schema::FactGenOptions gen;
  gen.num_tuples = 100000;

  auto random_or = backend::ChunkedFile::BulkLoad(
      &pool, scheme.get(), schema::GenerateFactTuples(*schema, gen),
      /*clustered=*/false);
  auto chunked_or = backend::ChunkedFile::BulkLoad(
      &pool, scheme.get(), schema::GenerateFactTuples(*schema, gen),
      /*clustered=*/true);
  if (!random_or.ok() || !chunked_or.ok()) return 1;

  std::printf("fact file: %llu tuples, %u data pages each\n\n",
              (unsigned long long)random_or->num_tuples(),
              random_or->fact_file().num_data_pages());

  // The same selection "D0 member 7, D2 members 10..14" on both files:
  // count the distinct pages holding matching rows.
  auto footprint = [&](backend::ChunkedFile* file) {
    std::set<uint32_t> pages;
    uint64_t matches = 0;
    (void)file->Scan([&](storage::RowId rid, const storage::Tuple& t) {
      if (t.keys[0] == 7 && t.keys[2] >= 10 && t.keys[2] <= 14) {
        pages.insert(file->fact_file().PageOfRow(rid));
        ++matches;
      }
      return true;
    });
    std::printf("  %-8s file: %llu matching tuples on %zu distinct pages\n",
                file->clustered() ? "chunked" : "random",
                (unsigned long long)matches, pages.size());
  };
  std::printf("selection D0='D0.3.7' AND D2 IN ['D2.3.10','D2.3.14']:\n");
  footprint(&*random_or);
  footprint(&*chunked_or);

  // Show the chunk interface: where those tuples live in the chunked file.
  std::printf("\nchunk runs containing D0=7 (chunk index lookups):\n");
  const chunks::GroupBySpec base = scheme->BaseSpec();
  const auto& grid = scheme->GridFor(base);
  const uint32_t r0 = scheme->dim_chunking(0).RangeOfValue(3, 7);
  const uint32_t r2lo = scheme->dim_chunking(2).RangeOfValue(3, 10);
  const uint32_t r2hi = scheme->dim_chunking(2).RangeOfValue(3, 14);
  int shown = 0;
  for (uint32_t c1 = 0; c1 < grid.NumRangesOnDim(1) && shown < 8; ++c1) {
    for (uint32_t c2 = r2lo; c2 <= r2hi && shown < 8; ++c2) {
      for (uint32_t c3 = 0; c3 < grid.NumRangesOnDim(3) && shown < 8; ++c3) {
        const uint64_t num = grid.GetChunkNum({r0, c1, c2, c3});
        auto run = chunked_or->ChunkRun(num);
        if (run.ok()) {
          std::printf("  chunk %6llu -> rows [%llu, %llu)\n",
                      (unsigned long long)num,
                      (unsigned long long)run->first,
                      (unsigned long long)(run->first + run->second));
          ++shown;
        }
      }
    }
  }
  std::printf("\n(cost of reading one chunk ~ its run length; cost of the "
              "same data in the random file ~ one page per tuple)\n");
  return 0;
}
