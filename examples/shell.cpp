// Interactive star-join SQL shell over the chunk-caching middle tier.
// Type the paper's star-join template against the Table 1 schema and watch
// the chunk cache work; dot-commands inspect the system.
//
//   $ ./shell [num_tuples] [--compress] [--policy=<name>]
//             [--benefit-source=static|measured] [--ghosts[=p1,p2,...]]
//             [--persist-dir=PATH] [--snapshot-every=N]
//   chunkcache> SELECT D0.L1, SUM(dollar_sales) FROM Sales, D0 GROUP BY D0.L1
//   chunkcache> .schema
//   chunkcache> .cache
//   chunkcache> .quit
//
// Server mode (DESIGN.md §15) — instead of the REPL, expose the same tier
// over the binary-framed TCP protocol until stdin reaches EOF:
//
//   $ ./shell --serve            # ephemeral port, printed on startup
//   $ ./shell --serve=7437 --rate-qps=200 --max-deadline-ms=500

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "common/simd.h"
#include "core/chunk_cache_manager.h"
#include "core/multi_range.h"
#include "schema/synthetic.h"
#include "server/server.h"
#include "sql/parser.h"
#include "storage/buffer_pool.h"
#include "storage/codec.h"
#include "storage/disk_manager.h"

using namespace chunkcache;

namespace {

void PrintSchema(const schema::StarSchema& schema) {
  std::printf("fact table %s(", schema.fact_name().c_str());
  for (uint32_t d = 0; d < schema.num_dims(); ++d) {
    std::printf("%s_id, ", schema.dimension(d).name.c_str());
  }
  std::printf("%s)\n", schema.measure_name().c_str());
  for (uint32_t d = 0; d < schema.num_dims(); ++d) {
    const auto& dim = schema.dimension(d);
    std::printf("dimension %s: ", dim.name.c_str());
    for (uint32_t l = 1; l <= dim.hierarchy.depth(); ++l) {
      std::printf("%s%s(%u)", l > 1 ? " -> " : "",
                  dim.hierarchy.LevelName(l).c_str(),
                  dim.hierarchy.LevelCardinality(l));
    }
    std::printf("   members like '%s'\n",
                dim.hierarchy.MemberName(dim.hierarchy.depth(), 0).c_str());
  }
}

void PrintHelp() {
  std::printf(
      "star-join SQL:\n"
      "  SELECT D0.L2, D3.L2, SUM(dollar_sales) FROM Sales, D0, D3\n"
      "  WHERE D0.L2 BETWEEN 'D0.2.5' AND 'D0.2.25' GROUP BY D0.L2, D3.L2\n"
      "dot-commands: .schema  .cache  .stats  .metrics  .trace [n]  .reset\n"
      "              .help  .quit\n"
      "  .metrics    Prometheus-style export of every registered metric\n"
      "  .trace [n]  span trees of the last n queries (default 1), JSONL\n");
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t tuples = 100000;
  bool compress = false;
  std::string policy = "benefit-clock";
  std::string benefit_source = "static";
  std::vector<std::string> ghosts;
  std::string persist_dir;
  uint64_t snapshot_every = 4096;
  bool serve = false;
  uint16_t serve_port = 0;
  double rate_qps = 0;
  uint64_t max_deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve") {
      serve = true;
    } else if (arg.rfind("--serve=", 0) == 0) {
      serve = true;
      serve_port = static_cast<uint16_t>(
          std::strtoul(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--rate-qps=", 0) == 0) {
      rate_qps = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--max-deadline-ms=", 0) == 0) {
      max_deadline_ms = std::strtoull(arg.c_str() + 18, nullptr, 10);
    } else if (arg == "--compress") {
      compress = true;
    } else if (arg.rfind("--policy=", 0) == 0) {
      policy = arg.substr(9);
      if (cache::MakePolicy(policy) == nullptr) {
        std::fprintf(stderr, "unknown policy \"%s\"; valid:", policy.c_str());
        for (const auto& n : cache::KnownPolicyNames()) {
          std::fprintf(stderr, " %s", n.c_str());
        }
        std::fprintf(stderr, "\n");
        return 1;
      }
    } else if (arg.rfind("--benefit-source=", 0) == 0) {
      benefit_source = arg.substr(17);
      if (benefit_source != "static" && benefit_source != "measured") {
        std::fprintf(stderr,
                     "--benefit-source must be 'static' or 'measured'\n");
        return 1;
      }
    } else if (arg.rfind("--persist-dir=", 0) == 0) {
      persist_dir = arg.substr(14);
      if (persist_dir.empty()) {
        std::fprintf(stderr, "--persist-dir needs a path\n");
        return 1;
      }
    } else if (arg.rfind("--snapshot-every=", 0) == 0) {
      snapshot_every = std::strtoull(arg.c_str() + 17, nullptr, 10);
    } else if (arg == "--ghosts") {
      ghosts.assign(cache::KnownPolicyNames().begin(),
                    cache::KnownPolicyNames().end());
    } else if (arg.rfind("--ghosts=", 0) == 0) {
      std::string list = arg.substr(9);
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (!name.empty()) {
          if (cache::MakePolicy(name) == nullptr) {
            std::fprintf(stderr, "unknown ghost policy \"%s\"\n",
                         name.c_str());
            return 1;
          }
          ghosts.push_back(name);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      tuples = std::strtoull(argv[i], nullptr, 10);
    }
  }

  auto schema_or = schema::BuildPaperSchema();
  if (!schema_or.ok()) return 1;
  auto schema = std::make_unique<schema::StarSchema>(
      std::move(schema_or).value());
  chunks::ChunkingOptions copts;
  copts.range_fraction = 0.1;
  auto scheme_or = chunks::ChunkingScheme::Build(schema.get(), copts, tuples);
  if (!scheme_or.ok()) return 1;
  auto scheme = std::make_unique<chunks::ChunkingScheme>(
      std::move(scheme_or).value());
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 2048);
  schema::FactGenOptions gen;
  gen.num_tuples = tuples;
  auto file_or = backend::ChunkedFile::BulkLoad(
      &pool, scheme.get(), schema::GenerateFactTuples(*schema, gen));
  if (!file_or.ok()) return 1;
  auto file = std::make_unique<backend::ChunkedFile>(
      std::move(file_or).value());
  backend::BackendEngine engine(&pool, file.get(), scheme.get());
  if (!engine.BuildBitmapIndexes().ok()) return 1;
  core::ChunkManagerOptions mopts;
  mopts.enable_in_cache_aggregation = true;
  mopts.num_workers = 4;     // parallel miss pipeline
  mopts.cache_shards = 8;    // sharded, thread-safe chunk cache
  mopts.trace_capacity = 64;  // per-query span trees for .trace
  mopts.enable_compression = compress;  // --compress: encoded cache tier
  mopts.policy = policy;
  mopts.benefit_source = benefit_source;
  mopts.ghost_policies = ghosts;  // shadow policy scoreboard for .stats
  // --persist-dir: the cache survives restarts (snapshot + WAL). Note the
  // shell regenerates its synthetic facts per run, so recovered entries
  // are only meaningful when num_tuples (and the seed) match the run that
  // wrote them — which they do for repeated invocations of this binary.
  mopts.persist_dir = persist_dir;
  mopts.persist_snapshot_every = snapshot_every;
  core::ChunkCacheManager tier(&engine, mopts);
  sql::SqlParser parser(schema.get());

  if (serve) {
    server::ServerOptions sopts;
    sopts.port = serve_port;
    sopts.admission.default_quota.rate_qps = rate_qps;
    sopts.max_deadline_ms = max_deadline_ms;
    // Home the server's counters on the tier's registry so one .metrics-
    // style dump (the kMetricsRequest frame) covers cache + serving.
    sopts.metrics = &tier.metrics();
    server::ChunkServer srv(&tier, sopts);
    const Status st = srv.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "serve failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("chunkcache serving %llu synthetic sales facts on "
                "%s:%u (tenant rate %s, deadline cap %s) — EOF stops.\n",
                (unsigned long long)tuples, sopts.bind_address.c_str(),
                srv.port(),
                rate_qps > 0 ? (std::to_string(rate_qps) + " qps").c_str()
                             : "unlimited",
                max_deadline_ms > 0
                    ? (std::to_string(max_deadline_ms) + " ms").c_str()
                    : "none");
    std::fflush(stdout);
    std::string l;
    while (std::getline(std::cin, l)) {
    }
    srv.Stop();
    return 0;
  }

  std::printf("chunkcache shell — %llu synthetic sales facts loaded.\n",
              (unsigned long long)tuples);
  PrintHelp();

  std::string line;
  while (true) {
    std::printf("chunkcache> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      PrintHelp();
      continue;
    }
    if (line == ".schema") {
      PrintSchema(*schema);
      continue;
    }
    if (line == ".cache") {
      const auto& cs = tier.chunk_cache().stats();
      std::printf("chunks=%zu bytes=%llu/%llu hits=%llu lookups=%llu "
                  "evictions=%llu\n",
                  tier.chunk_cache().num_chunks(),
                  (unsigned long long)tier.chunk_cache().bytes_used(),
                  (unsigned long long)tier.chunk_cache().capacity_bytes(),
                  (unsigned long long)cs.hits,
                  (unsigned long long)cs.lookups,
                  (unsigned long long)cs.evictions);
      continue;
    }
    if (line == ".stats" || line == "stats") {
      const auto cs = tier.StatsSnapshot();
      std::printf("cache: chunks=%zu bytes=%llu/%llu shards=%u\n",
                  tier.chunk_cache().num_chunks(),
                  (unsigned long long)tier.chunk_cache().bytes_used(),
                  (unsigned long long)tier.chunk_cache().capacity_bytes(),
                  tier.chunk_cache().num_shards());
      std::printf("  lookups=%llu hits=%llu (%.1f%%) insertions=%llu "
                  "evictions=%llu rejected=%llu\n",
                  (unsigned long long)cs.lookups, (unsigned long long)cs.hits,
                  cs.lookups ? 100.0 * cs.hits / cs.lookups : 0.0,
                  (unsigned long long)cs.insertions,
                  (unsigned long long)cs.evictions,
                  (unsigned long long)cs.rejected);
      std::printf("  lock contention: %.3f ms total\n", cs.contention_ns / 1e6);
      std::printf("replacement: policy=%s benefit-source=%s\n",
                  tier.chunk_cache().policy_name().c_str(),
                  tier.options().benefit_source.c_str());
      if (cache::GhostCacheSet* gs = tier.chunk_cache().ghosts()) {
        std::printf("  ghost standings (would-be hit ratio at same budget):\n");
        for (const auto& st : gs->Standings()) {
          const uint64_t refs = st.hits + st.misses;
          std::printf("    %-18s hits=%llu/%llu (%.1f%%) evictions=%llu\n",
                      st.policy.c_str(), (unsigned long long)st.hits,
                      (unsigned long long)refs,
                      refs ? 100.0 * st.hits / refs : 0.0,
                      (unsigned long long)st.evictions);
        }
      }
      for (size_t i = 0; i < cs.shards.size(); ++i) {
        const auto& sh = cs.shards[i];
        std::printf("  shard %2zu: chunks=%llu bytes=%llu lookups=%llu "
                    "hit%%=%.1f\n",
                    i, (unsigned long long)sh.chunks,
                    (unsigned long long)sh.bytes_used,
                    (unsigned long long)sh.lookups,
                    sh.lookups ? 100.0 * sh.hits / sh.lookups : 0.0);
      }
      std::printf("executor: tasks submitted=%llu run=%llu queue peak=%llu "
                  "steal-queue depth=%llu async prefetched=%llu\n",
                  (unsigned long long)cs.exec_tasks_submitted,
                  (unsigned long long)cs.exec_tasks_run,
                  (unsigned long long)cs.exec_queue_peak,
                  (unsigned long long)cs.exec_steal_queue_depth,
                  (unsigned long long)cs.async_prefetched_chunks);
      std::printf("simd: level=%s detected=%s override=%s\n",
                  simd::IsaLevelName(
                      static_cast<simd::IsaLevel>(cs.simd_level)),
                  simd::IsaLevelName(simd::DetectedLevel()),
                  simd::OverrideName());
      std::printf("kernels: dense=%llu hash=%llu rows folded dense=%llu "
                  "hash=%llu\n",
                  (unsigned long long)cs.dense_kernels,
                  (unsigned long long)cs.hash_kernels,
                  (unsigned long long)cs.rows_folded_dense,
                  (unsigned long long)cs.rows_folded_hash);
      std::printf("run i/o: coalesced reads=%llu single-run reads=%llu "
                  "runs merged=%llu\n",
                  (unsigned long long)cs.coalesced_reads,
                  (unsigned long long)cs.single_run_reads,
                  (unsigned long long)cs.runs_merged);
      std::printf("coalescing: waits=%llu dedup saved=%llu prefetch "
                  "dropped=%llu inflight peak=%llu\n",
                  (unsigned long long)cs.coalesced_waits,
                  (unsigned long long)cs.dedup_saved_chunks,
                  (unsigned long long)cs.prefetch_dropped_inflight,
                  (unsigned long long)cs.inflight_peak);
      std::printf("shared scans: batches=%llu requests=%llu queue hwm=%llu "
                  "deadline sheds=%llu\n",
                  (unsigned long long)cs.shared_scan_batches,
                  (unsigned long long)cs.shared_scan_requests,
                  (unsigned long long)cs.scan_queue_depth_hwm,
                  (unsigned long long)cs.scan_deadline_sheds);
      std::printf("faults: injected=%llu retries=%llu degraded=%llu "
                  "deadline expired=%llu checksum failures=%llu\n",
                  (unsigned long long)cs.faults_injected,
                  (unsigned long long)cs.retries,
                  (unsigned long long)cs.degraded_answers,
                  (unsigned long long)cs.deadline_expired,
                  (unsigned long long)cs.checksum_failures);
      const MetricsRegistry::Snapshot ms = tier.metrics().TakeSnapshot();
      if (tier.options().enable_compression) {
        std::printf("compression: chunks=%llu skipped=%llu raw bytes=%llu "
                    "encoded bytes=%llu ratio=%.3f\n",
                    (unsigned long long)cs.compressed_chunks,
                    (unsigned long long)cs.compression_skipped,
                    (unsigned long long)cs.codec_raw_bytes,
                    (unsigned long long)cs.codec_encoded_bytes,
                    cs.codec_raw_bytes
                        ? static_cast<double>(cs.codec_encoded_bytes) /
                              static_cast<double>(cs.codec_raw_bytes)
                        : 0.0);
        std::printf("  decode: calls=%llu decoded-lru hits=%llu "
                    "evictions=%llu\n",
                    (unsigned long long)cs.decode_calls,
                    (unsigned long long)cs.decoded_lru_hits,
                    (unsigned long long)cs.decoded_lru_evictions);
        for (size_t c = 0; c < storage::codec::kNumCodecs; ++c) {
          const char* nm = storage::codec::CodecName(
              static_cast<storage::codec::ColumnCodec>(c));
          const std::string base = std::string("cache.codec.") + nm;
          const uint64_t cols = ms.counter(base + ".columns");
          if (cols == 0) continue;
          const uint64_t raw = ms.counter(base + ".raw_bytes");
          const uint64_t enc = ms.counter(base + ".encoded_bytes");
          std::printf("  codec %-6s: columns=%llu raw=%llu encoded=%llu "
                      "ratio=%.3f\n",
                      nm, (unsigned long long)cols, (unsigned long long)raw,
                      (unsigned long long)enc,
                      raw ? static_cast<double>(enc) / static_cast<double>(raw)
                          : 0.0);
        }
        auto dec = ms.histograms.find("codec.decode_ns");
        if (dec != ms.histograms.end() && dec->second.count > 0) {
          const HistogramSnapshot& h = dec->second;
          std::printf("  decode-on-hit: n=%llu mean=%.1fus p50=%.1fus "
                      "p95=%.1fus p99=%.1fus\n",
                      (unsigned long long)h.count, h.Mean() / 1e3,
                      h.Quantile(0.5) / 1e3, h.Quantile(0.95) / 1e3,
                      h.Quantile(0.99) / 1e3);
        }
      }
      if (tier.persistence() != nullptr) {
        const auto& rec = tier.recovery_stats();
        std::printf("persist: wal records=%llu bytes=%llu errors=%llu "
                    "snapshots=%llu bytes=%llu errors=%llu\n",
                    (unsigned long long)cs.persist_wal_records,
                    (unsigned long long)cs.persist_wal_bytes,
                    (unsigned long long)cs.persist_wal_errors,
                    (unsigned long long)cs.persist_snapshots,
                    (unsigned long long)cs.persist_snapshot_bytes,
                    (unsigned long long)cs.persist_snapshot_errors);
        std::printf("  recovery: entries=%llu replayed=%llu truncated "
                    "bytes=%llu quarantined=%llu in %.2fms (generation %llu)\n",
                    (unsigned long long)cs.persist_recovered_entries,
                    (unsigned long long)cs.persist_replayed_records,
                    (unsigned long long)cs.persist_truncated_bytes,
                    (unsigned long long)cs.persist_quarantined,
                    rec.recovery_ns / 1e6,
                    (unsigned long long)tier.persistence()->generation());
      }
      auto lat = ms.histograms.find("query.latency_ns");
      if (lat != ms.histograms.end() && lat->second.count > 0) {
        const HistogramSnapshot& h = lat->second;
        std::printf("latency: queries=%llu mean=%.2fms p50=%.2fms "
                    "p95=%.2fms p99=%.2fms\n",
                    (unsigned long long)h.count, h.Mean() / 1e6,
                    h.Quantile(0.5) / 1e6, h.Quantile(0.95) / 1e6,
                    h.Quantile(0.99) / 1e6);
      }
      continue;
    }
    if (line == ".metrics") {
      // The snapshot folds the natively-atomic subsystem counters into
      // registry gauges, so the export below is complete.
      (void)tier.StatsSnapshot();
      std::fputs(tier.metrics().ExportPrometheus().c_str(), stdout);
      continue;
    }
    if (line == ".trace" || line.rfind(".trace ", 0) == 0) {
      size_t n = 1;
      if (line.size() > 7) n = std::strtoull(line.c_str() + 7, nullptr, 10);
      if (n == 0) n = 1;
      TraceRecorder* rec = tier.trace_recorder();
      if (rec == nullptr || rec->recorded() == 0) {
        std::printf("no traces recorded yet\n");
        continue;
      }
      std::fputs(rec->ExportJsonl(n).c_str(), stdout);
      continue;
    }
    if (line == ".reset") {
      tier.chunk_cache().Clear();
      std::printf("cache cleared\n");
      continue;
    }
    auto query = parser.ParseMulti(line);
    if (!query.ok()) {
      std::printf("error: %s\n", query.status().ToString().c_str());
      continue;
    }
    core::QueryStats stats;
    auto rows = core::ExecuteMultiRange(&tier, *query, &stats);
    if (!rows.ok()) {
      std::printf("error: %s\n", rows.status().ToString().c_str());
      continue;
    }
    // Print up to 20 rows with member names resolved.
    const size_t limit = std::min<size_t>(20, rows->size());
    for (size_t i = 0; i < limit; ++i) {
      const auto& r = (*rows)[i];
      std::string key;
      for (uint32_t d = 0; d < schema->num_dims(); ++d) {
        const uint32_t level = query->group_by.levels[d];
        if (level == 0) continue;
        if (!key.empty()) key += ", ";
        key += schema->dimension(d).hierarchy.MemberName(level, r.coords[d]);
      }
      std::printf("  %-50s  sum=%12.2f  count=%llu\n", key.c_str(), r.sum,
                  (unsigned long long)r.count);
    }
    if (rows->size() > limit) {
      std::printf("  ... (%zu rows total)\n", rows->size());
    }
    std::printf("[%zu rows; %llu/%llu chunks cached, %llu aggregated "
                "in-cache, %llu computed; %llu pages, %llu tuples at "
                "backend]\n",
                rows->size(),
                (unsigned long long)stats.chunks_from_cache,
                (unsigned long long)stats.chunks_needed,
                (unsigned long long)stats.chunks_from_aggregation,
                (unsigned long long)stats.chunks_from_backend,
                (unsigned long long)stats.backend_work.pages_read,
                (unsigned long long)stats.backend_work.tuples_processed);
  }
  return 0;
}
