// A realistic OLAP session over a hand-built retail star schema (the
// paper's motivating Product / Store / Date example): an analyst rolls up,
// drills down, and pans across months, and the chunk cache turns the
// locality of the session into cache hits. Also demonstrates the
// in-cache-aggregation extension answering a roll-up without the backend.
//
//   $ ./sales_analysis

#include <cstdio>
#include <memory>
#include <string>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "core/chunk_cache_manager.h"
#include "schema/star_schema.h"
#include "schema/synthetic.h"
#include "sql/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace chunkcache;

namespace {

/// Product: category (4) -> product (16).
Result<schema::Dimension> BuildProduct() {
  schema::HierarchyBuilder b;
  b.AddLevel("category");
  const char* categories[] = {"Clothing", "Electronics", "Grocery", "Toys"};
  for (const char* c : categories) {
    CHUNKCACHE_RETURN_IF_ERROR(b.AddMember(c).status());
  }
  b.AddLevel("name");
  const char* products[] = {
      "blaire_cotton_shirts", "denim_jacket", "wool_socks", "rain_coat",
      "tv_55in", "laptop_14", "headphones", "smart_watch",
      "oat_cereal", "olive_oil", "coffee_beans", "dark_chocolate",
      "lego_castle", "plush_bear", "rc_car", "puzzle_1k"};
  for (uint32_t i = 0; i < 16; ++i) {
    CHUNKCACHE_RETURN_IF_ERROR(b.AddMember(products[i], i / 4).status());
  }
  CHUNKCACHE_ASSIGN_OR_RETURN(schema::Hierarchy h, b.Build());
  return schema::Dimension{"Product", std::move(h)};
}

/// Store: state (3) -> city (6) -> store (12).
Result<schema::Dimension> BuildStore() {
  schema::HierarchyBuilder b;
  b.AddLevel("state");
  for (const char* s : {"WI", "IL", "CA"}) {
    CHUNKCACHE_RETURN_IF_ERROR(b.AddMember(s).status());
  }
  b.AddLevel("city");
  const struct {
    const char* name;
    uint32_t state;
  } cities[] = {{"Madison", 0},  {"Milwaukee", 0}, {"Chicago", 1},
                {"Springfield", 1}, {"LosAngeles", 2}, {"SanFrancisco", 2}};
  for (const auto& c : cities) {
    CHUNKCACHE_RETURN_IF_ERROR(b.AddMember(c.name, c.state).status());
  }
  b.AddLevel("store");
  for (uint32_t i = 0; i < 12; ++i) {
    CHUNKCACHE_RETURN_IF_ERROR(
        b.AddMember("store_" + std::to_string(i), i / 2).status());
  }
  CHUNKCACHE_ASSIGN_OR_RETURN(schema::Hierarchy h, b.Build());
  return schema::Dimension{"Store", std::move(h)};
}

/// Date: year (2) -> month (24).
Result<schema::Dimension> BuildDate() {
  schema::HierarchyBuilder b;
  b.AddLevel("year");
  CHUNKCACHE_RETURN_IF_ERROR(b.AddMember("1997").status());
  CHUNKCACHE_RETURN_IF_ERROR(b.AddMember("1998").status());
  b.AddLevel("month");
  const char* months[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                          "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  for (uint32_t y = 0; y < 2; ++y) {
    for (uint32_t m = 0; m < 12; ++m) {
      CHUNKCACHE_RETURN_IF_ERROR(
          b.AddMember(std::string(y == 0 ? "1997-" : "1998-") + months[m], y)
              .status());
    }
  }
  CHUNKCACHE_ASSIGN_OR_RETURN(schema::Hierarchy h, b.Build());
  return schema::Dimension{"Date", std::move(h)};
}

}  // namespace

int main() {
  // --- Build the retail schema. --------------------------------------------
  auto product = BuildProduct();
  auto store = BuildStore();
  auto date = BuildDate();
  if (!product.ok() || !store.ok() || !date.ok()) {
    std::fprintf(stderr, "schema build failed\n");
    return 1;
  }
  std::vector<schema::Dimension> dims;
  dims.push_back(std::move(*product));
  dims.push_back(std::move(*store));
  dims.push_back(std::move(*date));
  auto schema = std::make_unique<schema::StarSchema>(
      "Sales", std::move(dims), "dollar_sales");

  // --- Chunk the cube and load 200k sales facts. ---------------------------
  chunks::ChunkingOptions copts;
  copts.range_fraction = 0.25;  // small dimensions: ~4 ranges per level
  auto scheme_or = chunks::ChunkingScheme::Build(schema.get(), copts, 200000);
  if (!scheme_or.ok()) return 1;
  auto scheme = std::make_unique<chunks::ChunkingScheme>(
      std::move(scheme_or).value());

  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 2048);
  schema::FactGenOptions gen;
  gen.num_tuples = 200000;
  gen.zipf_theta = 0.5;  // mildly skewed sales
  auto file_or = backend::ChunkedFile::BulkLoad(
      &pool, scheme.get(), schema::GenerateFactTuples(*schema, gen));
  if (!file_or.ok()) return 1;
  auto file = std::make_unique<backend::ChunkedFile>(
      std::move(file_or).value());
  backend::BackendEngine engine(&pool, file.get(), scheme.get());
  if (!engine.BuildBitmapIndexes().ok()) return 1;

  core::ChunkManagerOptions mopts;
  mopts.cache_bytes = 16ull << 20;
  mopts.enable_in_cache_aggregation = true;  // paper §7 extension
  core::ChunkCacheManager tier(&engine, mopts);
  sql::SqlParser parser(schema.get());

  auto run = [&](const char* step, const std::string& text) {
    auto query = parser.Parse(text);
    if (!query.ok()) {
      std::printf("%s\n  parse error: %s\n", step,
                  query.status().ToString().c_str());
      return;
    }
    core::QueryStats stats;
    auto rows = tier.Execute(*query, &stats);
    if (!rows.ok()) {
      std::printf("%s\n  exec error: %s\n", step,
                  rows.status().ToString().c_str());
      return;
    }
    const char* how = stats.full_cache_hit
                          ? (stats.chunks_from_aggregation > 0
                                 ? "aggregated in cache"
                                 : "cache")
                          : (stats.chunks_from_cache > 0 ? "mixed" : "backend");
    std::printf("%-52s %4zu rows  [%s: %llu/%llu chunks cached, "
                "%llu pages read]\n",
                step, rows->size(), how,
                (unsigned long long)(stats.chunks_from_cache +
                                     stats.chunks_from_aggregation),
                (unsigned long long)stats.chunks_needed,
                (unsigned long long)stats.backend_work.pages_read);
  };

  std::printf("analyst session over %llu sales facts\n\n",
              (unsigned long long)file->num_tuples());

  run("1. Sales by state:",
      "SELECT Store.state, SUM(dollar_sales) FROM Sales, Store "
      "GROUP BY Store.state");

  run("2. Wisconsin by city:",
      "SELECT Store.city, SUM(dollar_sales) FROM Sales, Store "
      "WHERE Store.city BETWEEN 'Madison' AND 'Milwaukee' "
      "GROUP BY Store.city");

  run("3. Madison stores, clothing, first half of 1997:",
      "SELECT Store.store, Date.month, SUM(dollar_sales) "
      "FROM Sales, Store, Date, Product "
      "WHERE Store.store BETWEEN 'store_0' AND 'store_1' "
      "AND Date.month BETWEEN '1997-Jan' AND '1997-Jun' "
      "AND Product.category = 'Clothing' "
      "GROUP BY Store.store, Date.month");

  run("4. Pan to Apr-Sep (overlaps step 3):",
      "SELECT Store.store, Date.month, SUM(dollar_sales) "
      "FROM Sales, Store, Date, Product "
      "WHERE Store.store BETWEEN 'store_0' AND 'store_1' "
      "AND Date.month BETWEEN '1997-Apr' AND '1997-Sep' "
      "AND Product.category = 'Clothing' "
      "GROUP BY Store.store, Date.month");

  run("5. All cities, all months (warms the cube face):",
      "SELECT Store.city, Date.month, SUM(dollar_sales) "
      "FROM Sales, Store, Date GROUP BY Store.city, Date.month");

  run("6. Roll up to state x year (aggregated from step 5's chunks):",
      "SELECT Store.state, Date.year, SUM(dollar_sales) "
      "FROM Sales, Store, Date GROUP BY Store.state, Date.year");

  run("7. Repeat of step 2 (cache hit):",
      "SELECT Store.city, SUM(dollar_sales) FROM Sales, Store "
      "WHERE Store.city BETWEEN 'Madison' AND 'Milwaukee' "
      "GROUP BY Store.city");

  const auto& cs = tier.chunk_cache().stats();
  std::printf("\nsession cache: %zu chunks, %llu hits / %llu lookups\n",
              tier.chunk_cache().num_chunks(), (unsigned long long)cs.hits,
              (unsigned long long)cs.lookups);
  return 0;
}
