// Workload explorer: runs a configurable synthetic query stream against
// the three middle tiers (chunk cache / query cache / no cache) and prints
// a comparison — a command-line version of the paper's Section 6
// experiments for trying out parameters.
//
//   $ ./workload_explorer [stream] [queries] [cache_mb] [policy] [tuples]
//     stream  : random | eqpr | proximity   (default eqpr)
//     queries : stream length               (default 500)
//     cache_mb: cache size in MiB           (default 30)
//     policy  : lru | clock | benefit-clock (default benefit-clock)
//     tuples  : base table size             (default 100000)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "core/chunk_cache_manager.h"
#include "core/query_cache_manager.h"
#include "core/semantic_cache_manager.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

using namespace chunkcache;

int main(int argc, char** argv) {
  const char* stream = argc > 1 ? argv[1] : "eqpr";
  const uint64_t queries = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;
  const uint64_t cache_mb = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 30;
  const char* policy = argc > 4 ? argv[4] : "benefit-clock";
  const uint64_t tuples = argc > 5 ? std::strtoull(argv[5], nullptr, 10)
                                   : 100000;

  workload::WorkloadOptions wopts;
  if (std::strcmp(stream, "random") == 0) {
    wopts = workload::RandomStream(99);
  } else if (std::strcmp(stream, "proximity") == 0) {
    wopts = workload::ProximityStream(99);
  } else {
    wopts = workload::EqprStream(99);
    stream = "eqpr";
  }

  auto schema_or = schema::BuildPaperSchema();
  if (!schema_or.ok()) return 1;
  auto schema = std::make_unique<schema::StarSchema>(
      std::move(schema_or).value());
  chunks::ChunkingOptions copts;
  copts.range_fraction = 0.1;
  auto scheme_or = chunks::ChunkingScheme::Build(schema.get(), copts, tuples);
  if (!scheme_or.ok()) return 1;
  auto scheme = std::make_unique<chunks::ChunkingScheme>(
      std::move(scheme_or).value());

  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 2048);
  schema::FactGenOptions gen;
  gen.num_tuples = tuples;
  auto file_or = backend::ChunkedFile::BulkLoad(
      &pool, scheme.get(), schema::GenerateFactTuples(*schema, gen));
  if (!file_or.ok()) return 1;
  auto file = std::make_unique<backend::ChunkedFile>(
      std::move(file_or).value());
  backend::BackendEngine engine(&pool, file.get(), scheme.get());
  if (!engine.BuildBitmapIndexes().ok()) return 1;

  std::printf("stream=%s queries=%llu cache=%lluMB policy=%s tuples=%llu\n\n",
              stream, (unsigned long long)queries,
              (unsigned long long)cache_mb, policy,
              (unsigned long long)tuples);
  std::printf("%-14s %10s %10s %14s %14s\n", "tier", "CSR", "hits",
              "pages_read", "tuples_scanned");

  const CostModel cost_model;
  auto report = [&](core::MiddleTier* tier) {
    if (!pool.FlushAll().ok() || !pool.EvictAll().ok()) return 1;
    workload::QueryGenerator qgen(schema.get(), wopts);
    core::CsrAccumulator csr;
    uint64_t pages = 0, scanned = 0, full_hits = 0;
    for (uint64_t i = 0; i < queries; ++i) {
      core::QueryStats stats;
      auto rows = tier->Execute(qgen.Next(), &stats);
      if (!rows.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rows.status().ToString().c_str());
        return 1;
      }
      pages += stats.backend_work.pages_read;
      scanned += stats.backend_work.tuples_processed;
      full_hits += stats.full_cache_hit;
      csr.Record(stats);
    }
    std::printf("%-14s %10.3f %10llu %14llu %14llu\n", tier->name().c_str(),
                csr.Csr(), (unsigned long long)full_hits,
                (unsigned long long)pages, (unsigned long long)scanned);
    return 0;
  };

  {
    core::ChunkManagerOptions opts;
    opts.cache_bytes = cache_mb << 20;
    opts.policy = policy;
    core::ChunkCacheManager tier(&engine, opts);
    if (report(&tier) != 0) return 1;
  }
  {
    core::QueryManagerOptions opts;
    opts.cache_bytes = cache_mb << 20;
    opts.policy = policy;
    core::QueryCacheManager tier(&engine, opts);
    if (report(&tier) != 0) return 1;
  }
  {
    core::SemanticManagerOptions opts;
    opts.cache_bytes = cache_mb << 20;
    opts.policy = policy;
    core::SemanticCacheManager tier(&engine, opts);
    if (report(&tier) != 0) return 1;
  }
  {
    core::NoCacheManager tier(&engine);
    if (report(&tier) != 0) return 1;
  }
  return 0;
}
